(* End-to-end code generation validation: the Vitis backend's output is
   real C++. With a stub hls_stream.h (unbounded queues) the dataflow
   region can execute sequentially — the top function already invokes
   readers, processing elements and writers in topological order, so each
   stage finds its whole input stream filled. Compiling the generated
   source with g++ and running it against the reference interpreter
   validates every lowering decision end to end: expression rendering,
   shift-register taps, boundary predication, initialization/drain
   scheduling and stream wiring.

   The generated kernels compute in 32-bit floats while the reference is
   double precision, hence the comparison tolerance. *)
open Sf_ir
module Vitis = Sf_codegen.Vitis
module Interp = Sf_reference.Interp
module Tensor = Sf_reference.Tensor

let gxx_available = Sys.command "g++ --version > /dev/null 2>&1" = 0

let hls_stub =
  {|
#pragma once
#include <deque>
#include <cmath>
namespace hls {
template <typename T> class stream {
  std::deque<T> q;
public:
  void write(const T &v) { q.push_back(v); }
  T read() { T v = q.front(); q.pop_front(); return v; }
};
}
|}

let write_file dir name contents =
  let path = Filename.concat dir name in
  Out_channel.with_open_text path (fun oc -> output_string oc contents);
  path

let c_float_array name values =
  Printf.sprintf "float %s[%d] = {%s};\n" name (Array.length values)
    (String.concat ", " (Array.to_list (Array.map (Printf.sprintf "%.9gf") values)))

(* Build main.cpp: embed the input data, call the top function, print the
   outputs one value per line. *)
let harness (p : Program.t) inputs =
  let buf = Buffer.create 2048 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "#include <cstdio>\n";
  let mem_params =
    List.map (fun (_ : Field.t) -> "const float*") p.Program.inputs
    @ List.map (fun _ -> "float*") p.Program.outputs
  in
  add "extern \"C\" void %s(%s);\n" (Vitis.top_function_name p) (String.concat ", " mem_params);
  List.iter
    (fun (f : Field.t) ->
      let t : Tensor.t = List.assoc f.Field.name inputs in
      add "%s" (c_float_array ("in_" ^ f.Field.name) t.Tensor.data))
    p.Program.inputs;
  List.iter (fun o -> add "float out_%s[%d];\n" o (Program.cells p)) p.Program.outputs;
  add "int main() {\n  %s(%s);\n" (Vitis.top_function_name p)
    (String.concat ", "
       (List.map (fun (f : Field.t) -> "in_" ^ f.Field.name) p.Program.inputs
       @ List.map (fun o -> "out_" ^ o) p.Program.outputs));
  List.iter
    (fun o ->
      add "  for (int i = 0; i < %d; ++i) printf(\"%%.9g\\n\", (double)out_%s[i]);\n"
        (Program.cells p) o)
    p.Program.outputs;
  add "  return 0;\n}\n";
  Buffer.contents buf

let compare_against_reference (p : Program.t) inputs values =
  let reference = Interp.run p ~inputs in
  let cells = Program.cells p in
  Alcotest.(check int) "value count" (cells * List.length p.Program.outputs) (List.length values);
  let values = Array.of_list values in
  List.iteri
    (fun oi (name, (r : Interp.result)) ->
      Array.iteri
        (fun i expected ->
          let got = values.((oi * cells) + i) in
          (* f32 kernel vs f64 reference. *)
          Alcotest.(check bool)
            (Printf.sprintf "%s[%d]: %g vs %g" name i got expected)
            true
            (Float.abs (got -. expected) <= 1e-4 *. Float.max 1. (Float.abs expected)))
        r.Interp.tensor.Tensor.data)
    reference

let run_generated (p : Program.t) =
  let inputs = Interp.random_inputs p in
  let dir = Filename.temp_dir "sf_vitis" "" in
  let _ = write_file dir "hls_stream.h" hls_stub in
  let _ = write_file dir "hls_math.h" "#pragma once\n#include <cmath>\n" in
  let _ = write_file dir "kernel.cpp" (Fixtures.ok (Vitis.generate p)) in
  let _ = write_file dir "main.cpp" (harness p inputs) in
  let exe = Filename.concat dir "run" in
  let cmd =
    Printf.sprintf "g++ -std=c++17 -w -I%s %s/kernel.cpp %s/main.cpp -o %s 2> %s/gcc.log" dir
      dir dir exe dir
  in
  if Sys.command cmd <> 0 then begin
    let log = In_channel.with_open_text (Filename.concat dir "gcc.log") In_channel.input_all in
    Alcotest.fail ("generated code does not compile:\n" ^ log)
  end;
  let out = Filename.concat dir "out.txt" in
  if Sys.command (Printf.sprintf "%s > %s" exe out) <> 0 then
    Alcotest.fail "generated binary crashed";
  let values =
    In_channel.with_open_text out (fun ic ->
        let rec go acc =
          match In_channel.input_line ic with
          | Some line -> go (float_of_string line :: acc)
          | None -> List.rev acc
        in
        go [])
  in
  let reference = Interp.run p ~inputs in
  let cells = Program.cells p in
  Alcotest.(check int) "value count" (cells * List.length p.Program.outputs) (List.length values);
  let values = Array.of_list values in
  List.iteri
    (fun oi (name, (r : Interp.result)) ->
      Array.iteri
        (fun i expected ->
          let got = values.((oi * cells) + i) in
          (* f32 kernel vs f64 reference. *)
          Alcotest.(check bool)
            (Printf.sprintf "%s[%d]: %g vs %g" name i got expected)
            true
            (Float.abs (got -. expected) <= 1e-4 *. Float.max 1. (Float.abs expected)))
        r.Interp.tensor.Tensor.data)
    reference

(* ------------------------------------------------------------------ *)
(* OpenCL backend execution: the Intel-style kernels use channels and
   OpenCL qualifiers; a small textual transformation maps them onto the
   same hls::stream emulation (channels become global streams, kernels
   become plain functions), after which the kernels run sequentially in
   topological order. *)

let replace_all ~needle ~by s =
  let nl = String.length needle in
  let buf = Buffer.create (String.length s) in
  let i = ref 0 in
  while !i <= String.length s - nl do
    if String.sub s !i nl = needle then begin
      Buffer.add_string buf by;
      i := !i + nl
    end
    else begin
      Buffer.add_char buf s.[!i];
      incr i
    end
  done;
  Buffer.add_string buf (String.sub s !i (String.length s - !i));
  Buffer.contents buf

(* Rewrite [prefix(arg1{, arg2})] into a method call; arguments in the
   generated code are simple identifiers/expressions without nested
   commas at the top level of arg1. *)
let rewrite_channel_call ~prefix ~render s =
  let pl = String.length prefix in
  let buf = Buffer.create (String.length s) in
  let i = ref 0 in
  let n = String.length s in
  while !i < n do
    if !i + pl <= n && String.sub s !i pl = prefix then begin
      (* Find the matching close paren (depth-aware for arg2). *)
      let j = ref (!i + pl) in
      let depth = ref 1 in
      let comma = ref (-1) in
      while !depth > 0 do
        (match s.[!j] with
        | '(' -> incr depth
        | ')' -> decr depth
        | ',' -> if !depth = 1 && !comma < 0 then comma := !j
        | _ -> ());
        incr j
      done;
      let stop = !j - 1 in
      let arg1_end = if !comma >= 0 then !comma else stop in
      let arg1 = String.trim (String.sub s (!i + pl) (arg1_end - !i - pl)) in
      let arg2 =
        if !comma >= 0 then Some (String.trim (String.sub s (!comma + 1) (stop - !comma - 1)))
        else None
      in
      Buffer.add_string buf (render arg1 arg2);
      i := !j
    end
    else begin
      Buffer.add_char buf s.[!i];
      incr i
    end
  done;
  Buffer.contents buf

let strip_lines ~starting_with s =
  String.split_on_char '\n' s
  |> List.filter (fun line ->
         let t = String.trim line in
         not (List.exists (fun p ->
                  String.length t >= String.length p && String.sub t 0 (String.length p) = p)
                starting_with))
  |> String.concat "\n"

let opencl_to_cpp source =
  let s = source in
  let s =
    strip_lines s
      ~starting_with:
        [ "#pragma OPENCL"; "#include \"smi.h\""; "__attribute__((max_global_work_dim";
          "__attribute__((autorun))"; "#pragma unroll" ]
  in
  (* channel float NAME __attribute__((depth(N))); -> stream declaration *)
  let s = replace_all ~needle:"channel float " ~by:"hls::stream<float> CHDECL_" s in
  (* Neutralize the depth attribute on the rewritten declarations. *)
  let s = rewrite_channel_call ~prefix:"__attribute__((depth(" ~render:(fun _ _ -> "/*depth*/ ") s in
  let s = replace_all ~needle:"))/*depth*/" ~by:"/*depth*/" s in
  let s = replace_all ~needle:"/*depth*/ ))" ~by:"" s in
  let s =
    rewrite_channel_call ~prefix:"read_channel_intel(" ~render:(fun a _ -> a ^ ".read()") s
  in
  let s =
    rewrite_channel_call ~prefix:"write_channel_intel("
      ~render:(fun a b -> match b with Some v -> a ^ ".write(" ^ v ^ ")" | None -> a) s
  in
  let s = replace_all ~needle:"__kernel void" ~by:"void" s in
  let s = replace_all ~needle:"__global const float* restrict" ~by:"const float*" s in
  let s = replace_all ~needle:"__global float* restrict" ~by:"float*" s in
  (* Channel *references* inside kernels keep their plain names; align the
     declarations back to plain names. *)
  let s = replace_all ~needle:"CHDECL_" ~by:"" s in
  "#include <hls_stream.h>\n#include <cmath>\n" ^ s

let opencl_harness (p : Program.t) inputs =
  let rank = Program.rank p in
  let buf = Buffer.create 2048 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "#include <cstdio>\n";
  let full_inputs = List.filter (fun f -> Field.rank f = rank) p.Program.inputs in
  let lower_inputs = List.filter (fun f -> Field.rank f < rank) p.Program.inputs in
  List.iter
    (fun (f : Field.t) ->
      let t : Tensor.t = List.assoc f.Field.name inputs in
      add "%s" (c_float_array ("in_" ^ f.Field.name) t.Tensor.data))
    p.Program.inputs;
  List.iter (fun o -> add "float out_%s[%d];\n" o (Program.cells p)) p.Program.outputs;
  add "int main() {\n";
  List.iter (fun (f : Field.t) -> add "  load_%s(in_%s);\n" f.Field.name f.Field.name)
    lower_inputs;
  List.iter (fun (f : Field.t) -> add "  read_%s(in_%s);\n" f.Field.name f.Field.name) full_inputs;
  List.iter (fun (s : Stencil.t) -> add "  stencil_%s();\n" s.Stencil.name)
    (Program.topological_stencils p);
  List.iter (fun o -> add "  write_%s(out_%s);\n" o o) p.Program.outputs;
  List.iter
    (fun o ->
      add "  for (int i = 0; i < %d; ++i) printf(\"%%.9g\\n\", (double)out_%s[i]);\n"
        (Program.cells p) o)
    p.Program.outputs;
  add "  return 0;\n}\n";
  Buffer.contents buf

let run_generated_opencl (p : Program.t) =
  let inputs = Interp.random_inputs p in
  let dir = Filename.temp_dir "sf_opencl" "" in
  let _ = write_file dir "hls_stream.h" hls_stub in
  let artifact =
    match Fixtures.ok (Sf_codegen.Opencl.generate p) with
    | [ a ] -> a.Sf_codegen.Opencl.source
    | _ -> Alcotest.fail "expected single-device artifact"
  in
  (* Kernel source first, then the harness in the same translation unit so
     the global channels are shared. *)
  let combined = opencl_to_cpp artifact ^ "\n" ^ opencl_harness p inputs in
  let _ = write_file dir "combined.cpp" combined in
  let exe = Filename.concat dir "run" in
  let cmd =
    Printf.sprintf "g++ -std=c++17 -w -I%s %s/combined.cpp -o %s 2> %s/gcc.log" dir dir exe dir
  in
  if Sys.command cmd <> 0 then begin
    let log = In_channel.with_open_text (Filename.concat dir "gcc.log") In_channel.input_all in
    Alcotest.fail ("transformed OpenCL does not compile:\n" ^ log)
  end;
  let out = Filename.concat dir "out.txt" in
  if Sys.command (Printf.sprintf "%s > %s" exe out) <> 0 then
    Alcotest.fail "binary crashed";
  let values =
    In_channel.with_open_text out (fun ic ->
        let rec go acc =
          match In_channel.input_line ic with
          | Some line -> go (float_of_string line :: acc)
          | None -> List.rev acc
        in
        go [])
  in
  compare_against_reference p inputs values

let exec_case name build =
  Alcotest.test_case name `Slow (fun () ->
      if not gxx_available then () else run_generated (build ()))

let branchy_program () =
  let b = Builder.create ~name:"branchy" ~shape:[ 6; 8 ] () in
  Builder.input b "a";
  Builder.stencil b
    ~boundary:[ ("a", Boundary.Copy) ]
    ~lets:[ ("t", Builder.E.(acc "a" [ 0; -1 ] +% acc "a" [ 0; 1 ])) ]
    "s"
    Builder.E.(
      sel (var "t" >% c 0.) (sqrt_ (abs_ (var "t"))) (min_ (var "t") (acc "a" [ -1; 0 ])));
  Builder.output b "s";
  Builder.finish b

let suite =
  if not gxx_available then []
  else
    [
      exec_case "compiled laplace matches the reference" (fun () ->
          Fixtures.laplace2d ~shape:[ 8; 8 ] ());
      exec_case "compiled diamond (streams between PEs)" (fun () ->
          Fixtures.diamond ~shape:[ 6; 12 ] ~span:2 ());
      exec_case "compiled chain (3 PEs)" (fun () -> Fixtures.chain ~shape:[ 6; 8 ] ~n:3 ());
      exec_case "compiled branches, lets, copy boundary" branchy_program;
      exec_case "compiled vectorized kernel (W=2)" (fun () ->
          Fixtures.laplace2d ~shape:[ 6; 8 ] ~vector_width:2 ());
      exec_case "compiled multi-output fork" (fun () -> Fixtures.fork ~shape:[ 6; 6 ] ());
      Alcotest.test_case "compiled OpenCL backend: laplace" `Slow (fun () ->
          if gxx_available then run_generated_opencl (Fixtures.laplace2d ~shape:[ 8; 8 ] ()));
      Alcotest.test_case "compiled OpenCL backend: diamond" `Slow (fun () ->
          if gxx_available then run_generated_opencl (Fixtures.diamond ~shape:[ 6; 12 ] ~span:2 ()));
      Alcotest.test_case "compiled OpenCL backend: vectorized chain" `Slow (fun () ->
          if gxx_available then
            run_generated_opencl (Fixtures.chain ~shape:[ 6; 8 ] ~n:2 ~vector_width:2 ()));
      exec_case "compiled kitchen sink (lower-dim, scalar, shrink)" (fun () ->
          Fixtures.kitchen_sink ~shape:[ 3; 4; 8 ] ());
      Alcotest.test_case "compiled OpenCL backend: kitchen sink" `Slow (fun () ->
          if gxx_available then
            run_generated_opencl (Fixtures.kitchen_sink ~shape:[ 3; 4; 8 ] ()));
    ]
