(* Canonical content digests — the contract the pass cache rests on.
   Structurally equal values must digest identically (so cache hits are
   sound across reallocation, hash-consing state, and processes), any
   semantic mutation must change the digest (so stale artifacts are
   never replayed), and a warm cache must reproduce a cold run
   bit-for-bit. *)
open Sf_ir
module F = Sf_support.Fingerprint
module Device = Sf_models.Device
module Engine = Sf_sim.Engine
module Ctx = Sf_toolchain.Ctx
module Pass_manager = Sf_toolchain.Pass_manager
module Passes = Sf_toolchain.Passes
module Cache = Sf_toolchain.Cache

let hex p = F.to_hex (Program.fingerprint p)

(* A deep structural copy that reallocates every node, so equal digests
   cannot come from physical identity (the IR behind the digest is
   hash-consed; the digest must not depend on that). *)
let rec copy_expr = function
  | Expr.Const f -> Expr.Const f
  | Expr.Access { field; offsets } -> Expr.Access { field; offsets = List.map Fun.id offsets }
  | Expr.Var v -> Expr.Var (String.init (String.length v) (String.get v))
  | Expr.Unary (op, e) -> Expr.Unary (op, copy_expr e)
  | Expr.Binary (op, a, b) -> Expr.Binary (op, copy_expr a, copy_expr b)
  | Expr.Select { cond; if_true; if_false } ->
      Expr.Select
        { cond = copy_expr cond; if_true = copy_expr if_true; if_false = copy_expr if_false }
  | Expr.Call (f, args) -> Expr.Call (f, List.map copy_expr args)

let copy_body { Expr.lets; result } =
  { Expr.lets = List.map (fun (n, e) -> (n, copy_expr e)) lets; result = copy_expr result }

let copy_program (p : Program.t) =
  {
    p with
    Program.stencils =
      List.map (fun (s : Stencil.t) -> { s with Stencil.body = copy_body s.Stencil.body })
        p.Program.stencils;
  }

let prop_structural_equality_same_digest =
  QCheck.Test.make ~count:100 ~name:"structurally equal programs digest identically"
    Program_gen.arbitrary_program (fun p -> hex p = hex (copy_program p))

(* Nudge the first stencil's result by a constant: semantically different
   program, so the digest must move. *)
let nudge (p : Program.t) =
  match p.Program.stencils with
  | [] -> p
  | s :: rest ->
      let body =
        { s.Stencil.body with Expr.result = Expr.Binary (Expr.Add, s.Stencil.body.Expr.result, Expr.Const 0.125) }
      in
      { p with Program.stencils = { s with Stencil.body } :: rest }

let prop_semantic_mutation_changes_digest =
  QCheck.Test.make ~count:100 ~name:"mutating a stencil body changes the digest"
    Program_gen.arbitrary_program (fun p ->
      p.Program.stencils = [] || hex p <> hex (nudge p))

let prop_vector_width_in_digest =
  QCheck.Test.make ~count:50 ~name:"vector width is part of the digest"
    Program_gen.arbitrary_program (fun p ->
      hex p <> hex { p with Program.vector_width = p.Program.vector_width + 1 })

let test_constant_bits_matter () =
  (* 0.1 +. 0.2 <> 0.3 in IEEE-754; the digest hashes the bits, not a
     printed rendering, so these two bodies must differ. *)
  let body c = { Expr.lets = []; result = Expr.Const c } in
  Alcotest.(check bool) "adjacent floats distinguished" false
    (F.to_hex (Program.body_fingerprint (body (0.1 +. 0.2)))
    = F.to_hex (Program.body_fingerprint (body 0.3)))

let test_device_digest_sensitivity () =
  let d = Device.stratix10 in
  let fp x = F.to_hex (Device.fingerprint x) in
  Alcotest.(check string) "deterministic" (fp d) (fp d);
  List.iter
    (fun (label, d') ->
      Alcotest.(check bool) label false (fp d = fp d'))
    [
      ("frequency", { d with Device.frequency_hz = d.Device.frequency_hz +. 1e6 });
      ("m20k", { d with Device.m20k = d.Device.m20k + 1 });
      ("link bandwidth", { d with Device.link_bytes_per_s = d.Device.link_bytes_per_s +. 1. });
    ]

let test_sim_config_digest_narrowing () =
  (* The full config digest must see every knob, but the latency view —
     what latency-driven analyses key on — must ignore simulation-only
     settings like the safety budget. *)
  let base = Engine.Config.make () in
  let bounded =
    Engine.Config.make ~safety:(Engine.Config.safety ~max_cycles:1234 ()) ()
  in
  Alcotest.(check bool) "full digest sees the cycle budget" false
    (F.to_hex (Engine.Config.fingerprint base) = F.to_hex (Engine.Config.fingerprint bounded));
  Alcotest.(check string) "latency view does not"
    (F.to_hex (Engine.Config.latency_fingerprint base.Engine.Config.latency))
    (F.to_hex (Engine.Config.latency_fingerprint bounded.Engine.Config.latency));
  let cheap = Engine.Config.make ~latency:Sf_analysis.Latency.cheap () in
  Alcotest.(check bool) "latency view sees latency changes" false
    (F.to_hex (Engine.Config.latency_fingerprint base.Engine.Config.latency)
    = F.to_hex (Engine.Config.latency_fingerprint cheap.Engine.Config.latency))

let pipeline p = [ Passes.use_program p; Passes.delay_buffers; Passes.partition; Passes.codegen_opencl ]

let test_warm_run_bit_identical () =
  let p = Fixtures.diamond () in
  let cache = Cache.create () in
  let run () =
    match Pass_manager.run ~cache (pipeline p) (Ctx.create ()) with
    | Error (ds, _) -> Alcotest.fail (Sf_support.Diag.to_string (List.hd ds))
    | Ok (ctx, trace) -> (Ctx.artifact_files ctx, trace)
  in
  let cold_files, cold_trace = run () in
  let warm_files, warm_trace = run () in
  Alcotest.(check int) "cold run executed every pass"
    (List.length cold_trace)
    (Pass_manager.executed_passes cold_trace);
  Alcotest.(check int) "warm run executed nothing" 0
    (Pass_manager.executed_passes warm_trace);
  Alcotest.(check int) "warm run was fully cached"
    (List.length warm_trace)
    (Pass_manager.cached_passes warm_trace);
  Alcotest.(check (list (pair string string))) "artifacts bit-identical" cold_files warm_files

let test_seed_change_reruns_only_simulate () =
  let p = Fixtures.diamond () in
  let cache = Cache.create () in
  let passes seed =
    [
      Passes.use_program p;
      Passes.delay_buffers;
      Passes.partition;
      Passes.performance_model;
      Passes.simulate ~validate:false ~seed ();
    ]
  in
  let run seed =
    match Pass_manager.run ~cache (passes seed) (Ctx.create ()) with
    | Error (ds, _) -> Alcotest.fail (Sf_support.Diag.to_string (List.hd ds))
    | Ok (_, trace) -> trace
  in
  ignore (run 1);
  let trace = run 2 in
  let executed =
    List.filter_map
      (fun (t : Pass_manager.timing) ->
        if t.Pass_manager.cached then None else Some t.Pass_manager.pass)
      trace
  in
  Alcotest.(check (list string)) "only the seeded pass re-ran" [ "simulate" ] executed

let suite =
  [
    QCheck_alcotest.to_alcotest prop_structural_equality_same_digest;
    QCheck_alcotest.to_alcotest prop_semantic_mutation_changes_digest;
    QCheck_alcotest.to_alcotest prop_vector_width_in_digest;
    Alcotest.test_case "constant bits matter" `Quick test_constant_bits_matter;
    Alcotest.test_case "device digest sensitivity" `Quick test_device_digest_sensitivity;
    Alcotest.test_case "sim-config digest narrowing" `Quick test_sim_config_digest_narrowing;
    Alcotest.test_case "warm run is bit-identical to cold" `Quick test_warm_run_bit_identical;
    Alcotest.test_case "seed change re-runs only simulate" `Quick test_seed_change_reruns_only_simulate;
  ]
