The serve subcommand reads newline-delimited JSON requests and answers
each with one response line, holding a single pass cache across the
whole session. Request 2 repeats request 1 verbatim: every pass replays
from the cache (executed=0). Request 4 changes only the simulation seed
of request 3: the frontend, analysis, partition and performance-model
passes all hit, and only the simulate pass re-runs. Each response
reports its own cache deltas; the racy global totals only appear under
the explicit cache-stats verb. --ordered pins the response order to the
request order (the writer otherwise emits in completion order, so the
reader-answered shutdown could overtake a slow simulate). Timings are
normalized for determinism:

  $ cat > requests <<'EOF'
  > {"id": 1, "verb": "analyze", "program_file": "../../examples/programs/diamond.json"}
  > {"id": 2, "verb": "analyze", "program_file": "../../examples/programs/diamond.json"}
  > {"id": 3, "verb": "simulate", "program_file": "../../examples/programs/diamond.json", "options": {"seed": 1, "validate": false}}
  > {"id": 4, "verb": "simulate", "program_file": "../../examples/programs/diamond.json", "options": {"seed": 2, "validate": false}}
  > {"id": 5, "verb": "cache-stats"}
  > {"id": 6, "verb": "shutdown"}
  > EOF
  $ ../../bin/main.exe serve --ordered < requests | sed -E 's/"(queue_|exec_)?seconds":[0-9.e+-]+/"\1seconds":_/g'
  {"id":1,"seq":0,"verb":"analyze","ok":true,"result":{"program":"diamond","latency_cycles":40,"delay_buffer_words":24,"expected_cycles":2088},"diagnostics":[],"passes":{"executed":2,"cached":0,"trace":[{"pass":"load-file","cached":false},{"pass":"delay-buffers","cached":false}]},"cache":{"hits":0,"misses":2,"joined":0},"timing":{"seconds":_,"queue_seconds":_,"exec_seconds":_,"worker":1}}
  {"id":2,"seq":1,"verb":"analyze","ok":true,"result":{"program":"diamond","latency_cycles":40,"delay_buffer_words":24,"expected_cycles":2088},"diagnostics":[],"passes":{"executed":0,"cached":2,"trace":[{"pass":"load-file","cached":true},{"pass":"delay-buffers","cached":true}]},"cache":{"hits":2,"misses":0,"joined":0},"timing":{"seconds":_,"queue_seconds":_,"exec_seconds":_,"worker":1}}
  {"id":3,"seq":2,"verb":"simulate","ok":true,"result":{"program":"diamond","latency_cycles":40,"delay_buffer_words":24,"expected_cycles":2088,"devices":1,"modeled_ops_per_s":882758620.68965518,"simulation":{"cycles":2092,"predicted_cycles":2088,"bytes_read":8192,"bytes_written":8192,"network_bytes":0}},"diagnostics":[],"passes":{"executed":3,"cached":2,"trace":[{"pass":"load-file","cached":true},{"pass":"delay-buffers","cached":true},{"pass":"partition","cached":false},{"pass":"performance-model","cached":false},{"pass":"simulate","cached":false}]},"cache":{"hits":2,"misses":3,"joined":0},"timing":{"seconds":_,"queue_seconds":_,"exec_seconds":_,"worker":1}}
  {"id":4,"seq":3,"verb":"simulate","ok":true,"result":{"program":"diamond","latency_cycles":40,"delay_buffer_words":24,"expected_cycles":2088,"devices":1,"modeled_ops_per_s":882758620.68965518,"simulation":{"cycles":2092,"predicted_cycles":2088,"bytes_read":8192,"bytes_written":8192,"network_bytes":0}},"diagnostics":[],"passes":{"executed":1,"cached":4,"trace":[{"pass":"load-file","cached":true},{"pass":"delay-buffers","cached":true},{"pass":"partition","cached":true},{"pass":"performance-model","cached":true},{"pass":"simulate","cached":false}]},"cache":{"hits":4,"misses":1,"joined":0},"timing":{"seconds":_,"queue_seconds":_,"exec_seconds":_,"worker":1}}
  {"id":5,"seq":4,"verb":"cache-stats","ok":true,"result":{"hits":8,"misses":6,"stale":0,"evictions":0,"joined":0,"store_corrupt":0,"takeovers":0,"entries":6},"diagnostics":[],"passes":{"executed":0,"cached":0,"trace":[]},"cache":{"hits":0,"misses":0,"joined":0},"timing":{"seconds":_,"queue_seconds":_,"exec_seconds":_,"worker":1}}
  {"id":6,"seq":5,"verb":"shutdown","ok":true,"result":null,"diagnostics":[],"passes":{"executed":0,"cached":0,"trace":[]},"cache":{"hits":0,"misses":0,"joined":0},"timing":{"seconds":_,"queue_seconds":_,"exec_seconds":_,"worker":0}}

Bad requests answer with an SF-coded diagnostic but never kill the loop:

  $ printf '%s\n' '{not json' '{"verb": "transmogrify"}' \
  >   | ../../bin/main.exe serve | sed -E 's/"(queue_|exec_)?seconds":[0-9.e+-]+/"\1seconds":_/g'
  {"seq":0,"verb":"error","ok":false,"result":null,"diagnostics":[{"severity":"error","code":"SF0201","message":"malformed request: line 1, column 2: expected \" but found n"}],"passes":{"executed":0,"cached":0,"trace":[]},"cache":{"hits":0,"misses":0,"joined":0},"timing":{"seconds":_,"queue_seconds":_,"exec_seconds":_,"worker":0}}
  {"seq":1,"verb":"transmogrify","ok":false,"result":null,"diagnostics":[{"severity":"error","code":"SF0203","message":"unknown verb \"transmogrify\""}],"passes":{"executed":0,"cached":0,"trace":[]},"cache":{"hits":0,"misses":0,"joined":0},"timing":{"seconds":_,"queue_seconds":_,"exec_seconds":_,"worker":0}}

With --cache-dir the cache survives across server processes: a second
server over the same directory answers the same request without
executing a single pass (2 disk hits):

  $ echo '{"id": 1, "verb": "analyze", "program_file": "../../examples/programs/diamond.json"}' > one
  $ ../../bin/main.exe serve --cache-dir store < one > /dev/null
  $ ../../bin/main.exe serve --cache-dir store < one \
  >   | sed -E 's/"(queue_|exec_)?seconds":[0-9.e+-]+/"\1seconds":_/g'
  {"id":1,"seq":0,"verb":"analyze","ok":true,"result":{"program":"diamond","latency_cycles":40,"delay_buffer_words":24,"expected_cycles":2088},"diagnostics":[],"passes":{"executed":0,"cached":2,"trace":[{"pass":"load-file","cached":true},{"pass":"delay-buffers","cached":true}]},"cache":{"hits":2,"misses":0,"joined":0},"timing":{"seconds":_,"queue_seconds":_,"exec_seconds":_,"worker":1}}
