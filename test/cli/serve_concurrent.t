The concurrent serve tier. Three scenarios, each pinned to request
order with --ordered so the goldens are stable regardless of which
worker finishes first. Timings are normalized; in the multi-worker
scenario the worker attribution is normalized too (which worker claims
which request is scheduling-dependent).

Pipelined independent requests over two workers: every request gets
exactly one response tagged with its client id and a gap-free seq in
admission order.

  $ cat > requests <<'EOF'
  > {"id": 1, "verb": "analyze", "program_file": "../../examples/programs/diamond.json"}
  > {"id": 2, "verb": "analyze", "program_file": "../../examples/programs/laplace2d.json"}
  > {"id": 3, "verb": "analyze", "program_file": "../../examples/programs/jacobi2d_8stage.json"}
  > {"id": 4, "verb": "shutdown"}
  > EOF
  $ ../../bin/main.exe serve --serve-jobs 2 --ordered < requests \
  >   | sed -E -e 's/"(queue_|exec_)?seconds":[0-9.e+-]+/"\1seconds":_/g' -e 's/"worker":[0-9]+/"worker":_/'
  {"id":1,"seq":0,"verb":"analyze","ok":true,"result":{"program":"diamond","latency_cycles":40,"delay_buffer_words":24,"expected_cycles":2088},"diagnostics":[],"passes":{"executed":2,"cached":0,"trace":[{"pass":"load-file","cached":false},{"pass":"delay-buffers","cached":false}]},"cache":{"hits":0,"misses":2,"joined":0},"timing":{"seconds":_,"queue_seconds":_,"exec_seconds":_,"worker":_}}
  {"id":2,"seq":1,"verb":"analyze","ok":true,"result":{"program":"laplace2d","latency_cycles":160,"delay_buffer_words":0,"expected_cycles":4256},"diagnostics":[],"passes":{"executed":2,"cached":0,"trace":[{"pass":"load-file","cached":false},{"pass":"delay-buffers","cached":false}]},"cache":{"hits":0,"misses":2,"joined":0},"timing":{"seconds":_,"queue_seconds":_,"exec_seconds":_,"worker":_}}
  {"id":3,"seq":2,"verb":"analyze","ok":true,"result":{"program":"jacobi2d_chain8","latency_cycles":4352,"delay_buffer_words":0,"expected_cycles":69888},"diagnostics":[],"passes":{"executed":2,"cached":0,"trace":[{"pass":"load-file","cached":false},{"pass":"delay-buffers","cached":false}]},"cache":{"hits":0,"misses":2,"joined":0},"timing":{"seconds":_,"queue_seconds":_,"exec_seconds":_,"worker":_}}
  {"id":4,"seq":3,"verb":"shutdown","ok":true,"result":null,"diagnostics":[],"passes":{"executed":0,"cached":0,"trace":[]},"cache":{"hits":0,"misses":0,"joined":0},"timing":{"seconds":_,"queue_seconds":_,"exec_seconds":_,"worker":_}}

Cancellation: with a single worker, request A (a deliberately large
simulation) occupies the worker while B waits in the queue; the cancel
verb is answered by the reader immediately, flags B, and B aborts at
its first pass boundary with SF0902 — no partial result is published
to the cache.

  $ cat > slow.json <<'EOF'
  > {"name": "slow", "shape": [1024, 1024], "inputs": {"x": {}},
  >  "stencils": {
  >    "a": {"code": "x[0, 0] * 2.0"},
  >    "b": {"code": "a[0, -8] + a[0, 8]",
  >          "boundary": {"a": {"type": "constant", "value": 0.0}}},
  >    "c": {"code": "a[0, 0] + b[0, 0]"}},
  >  "outputs": ["c"]}
  > EOF
  $ cat > requests <<'EOF'
  > {"id": "A", "verb": "simulate", "program_file": "slow.json", "options": {"validate": false}}
  > {"id": "B", "verb": "simulate", "program_file": "slow.json", "options": {"validate": false, "seed": 7}}
  > {"id": "C", "verb": "cancel", "target": "B"}
  > {"id": "D", "verb": "shutdown"}
  > EOF
  $ ../../bin/main.exe serve --ordered < requests \
  >   | sed -E 's/"(queue_|exec_)?seconds":[0-9.e+-]+/"\1seconds":_/g'
  {"id":"A","seq":0,"verb":"simulate","ok":true,"result":{"program":"slow","latency_cycles":40,"delay_buffer_words":24,"expected_cycles":1048616,"devices":1,"modeled_ops_per_s":899965669.03423178,"simulation":{"cycles":1048620,"predicted_cycles":1048616,"bytes_read":4194304,"bytes_written":4194304,"network_bytes":0}},"diagnostics":[],"passes":{"executed":5,"cached":0,"trace":[{"pass":"load-file","cached":false},{"pass":"delay-buffers","cached":false},{"pass":"partition","cached":false},{"pass":"performance-model","cached":false},{"pass":"simulate","cached":false}]},"cache":{"hits":0,"misses":5,"joined":0},"timing":{"seconds":_,"queue_seconds":_,"exec_seconds":_,"worker":1}}
  {"id":"B","seq":1,"verb":"simulate","ok":false,"result":null,"diagnostics":[{"severity":"error","code":"SF0902","message":"request cancelled before pass load-file"}],"passes":{"executed":0,"cached":0,"trace":[]},"cache":{"hits":0,"misses":0,"joined":0},"timing":{"seconds":_,"queue_seconds":_,"exec_seconds":_,"worker":1}}
  {"id":"C","seq":2,"verb":"cancel","ok":true,"result":{"target":"B","found":true},"diagnostics":[],"passes":{"executed":0,"cached":0,"trace":[]},"cache":{"hits":0,"misses":0,"joined":0},"timing":{"seconds":_,"queue_seconds":_,"exec_seconds":_,"worker":0}}
  {"id":"D","seq":3,"verb":"shutdown","ok":true,"result":null,"diagnostics":[],"passes":{"executed":0,"cached":0,"trace":[]},"cache":{"hits":0,"misses":0,"joined":0},"timing":{"seconds":_,"queue_seconds":_,"exec_seconds":_,"worker":0}}

Overload: with --queue-depth 1 the slow request fills the only slot;
the next pool verb is rejected immediately with SF0903 instead of
queueing behind it. Control verbs (shutdown here) are answered by the
reader and never rejected.

  $ cat > requests <<'EOF'
  > {"id": "A", "verb": "simulate", "program_file": "slow.json", "options": {"validate": false}}
  > {"id": "B", "verb": "analyze", "program_file": "../../examples/programs/diamond.json"}
  > {"id": "C", "verb": "shutdown"}
  > EOF
  $ ../../bin/main.exe serve --queue-depth 1 --ordered < requests \
  >   | sed -E 's/"(queue_|exec_)?seconds":[0-9.e+-]+/"\1seconds":_/g'
  {"id":"A","seq":0,"verb":"simulate","ok":true,"result":{"program":"slow","latency_cycles":40,"delay_buffer_words":24,"expected_cycles":1048616,"devices":1,"modeled_ops_per_s":899965669.03423178,"simulation":{"cycles":1048620,"predicted_cycles":1048616,"bytes_read":4194304,"bytes_written":4194304,"network_bytes":0}},"diagnostics":[],"passes":{"executed":5,"cached":0,"trace":[{"pass":"load-file","cached":false},{"pass":"delay-buffers","cached":false},{"pass":"partition","cached":false},{"pass":"performance-model","cached":false},{"pass":"simulate","cached":false}]},"cache":{"hits":0,"misses":5,"joined":0},"timing":{"seconds":_,"queue_seconds":_,"exec_seconds":_,"worker":1}}
  {"id":"B","seq":1,"verb":"analyze","ok":false,"result":null,"diagnostics":[{"severity":"error","code":"SF0903","message":"server overloaded: 1 request(s) already in flight (queue depth 1)"}],"passes":{"executed":0,"cached":0,"trace":[]},"cache":{"hits":0,"misses":0,"joined":0},"timing":{"seconds":_,"queue_seconds":_,"exec_seconds":_,"worker":0}}
  {"id":"C","seq":2,"verb":"shutdown","ok":true,"result":null,"diagnostics":[],"passes":{"executed":0,"cached":0,"trace":[]},"cache":{"hits":0,"misses":0,"joined":0},"timing":{"seconds":_,"queue_seconds":_,"exec_seconds":_,"worker":0}}
