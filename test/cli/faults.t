Deterministic fault injection through the CLI. --inject activates a
fault plan ("default" = every kind on every component) and --fault-seed
picks the timeline; the report accounts for what was injected, and the
run still completes bit-identical to the reference (the analysed
depths make the graph latency-insensitive):

  $ ../../bin/main.exe simulate ../../examples/programs/diamond.json \
  >   --inject default --fault-seed 2
  program diamond: 1 stencil(s) over 1 device(s)
    fusion: 3 -> 1 stencils
    latency L = 40 cycles, expected C = L + N = 2088 cycles
    modelled performance: 1.47 GOp/s
    simulated 2324 cycles (model: 2088), 8192 B read, 8192 B written
    injected faults: 39 event(s), 300 perturbed component-cycle(s)
  

The pass-manager counter registry picks up the injection totals:

  $ ../../bin/main.exe simulate ../../examples/programs/diamond.json \
  >   --inject default --fault-seed 2 --trace-passes \
  >   | sed -E 's/ +[0-9]+\.[0-9]+ ms/ _ ms/' | grep faults-injected
    simulate           simulation _ ms  stencils=1 edges=1 delay-words=0 devices=1 sim-cycles=2324 sim-stalls=197 sim-net-bytes=0 faults-injected=39 stall-cycles-injected=300

A malformed plan is rejected up front as a configuration error:

  $ ../../bin/main.exe simulate ../../examples/programs/diamond.json \
  >   --inject 'warp-core-breach:gap=3'
  stencilflow: error[SF0704]: bad --inject plan: unknown fault kind "warp-core-breach"
  [7]

--max-cycles caps the run; the SF0703 timeout diagnostic echoes the
budget so the operator can see which knob fired:

  $ ../../bin/main.exe simulate ../../examples/programs/diamond.json --max-cycles 100
  program diamond: 1 stencil(s) over 1 device(s)
    fusion: 3 -> 1 stencils
    latency L = 40 cycles, expected C = L + N = 2088 cycles
    modelled performance: 1.47 GOp/s
    simulation FAILED: error[SF0703]: simulation timed out at cycle 100
    note: c: pipeline in flight
    note: read.x@0: waiting for memory bandwidth
    note: write.c@0: waiting for memory bandwidth
    note: cycle budget: 100 (Config.safety.max_cycles / --max-cycles)
    note: unit c: 1 blocked cycles
  
  [7]

validate-depths is the adversarial harness: a seeded campaign checks
bit-identical completion at the analysed depths, then the tightest
delay-buffer edge is under-provisioned to the largest capacity that
deadlocks — expecting a deterministic SF0701 whose notes attribute the
stall to the injected timing faults that preceded it:

  $ ../../bin/main.exe validate-depths ../../examples/programs/diamond.json --campaign 5
  campaign: 5/5 seeded schedules bit-identical to the unperturbed run (2092 cycles)
  tightest delay-buffer edge: a->c (analysed depth 24 + slack 4 words)
    under-provisioned to capacity 16: deadlocks; capacity 17 completes (margin 12 words below analysed provisioning)
    error[SF0701]: simulation deadlocked at cycle 4126
    injected 147 timing-fault event(s) (1208 perturbed component-cycles) before the failure
    fault-attribution: unit-hiccup on c injected at cycle 4089 for 8 cycle(s) preceded the stall
    fault-attribution: write-backpressure on write.c@0 injected at cycle 4085 for 5 cycle(s) preceded the stall
    fault-attribution: unit-hiccup on a injected at cycle 4006 for 5 cycle(s) preceded the stall

  $ ../../bin/main.exe validate-depths ../../examples/programs/acoustic_wave.json \
  >   --campaign 3
  campaign: 3/3 seeded schedules bit-identical to the unperturbed run (1147 cycles)
  tightest delay-buffer edge: u->u_next (analysed depth 96 + slack 4 words)
    under-provisioned to capacity 64: deadlocks; capacity 65 completes (margin 36 words below analysed provisioning)
    error[SF0701]: simulation deadlocked at cycle 4197
    injected 162 timing-fault event(s) (1278 perturbed component-cycles) before the failure
    fault-attribution: unit-hiccup on u_next injected at cycle 4192 for 11 cycle(s) preceded the stall
    fault-attribution: unit-hiccup on lap injected at cycle 4163 for 9 cycle(s) preceded the stall
    fault-attribution: unit-hiccup on u_pass injected at cycle 4132 for 1 cycle(s) preceded the stall
