Request deadlines are charged only against passes that would actually
execute — cached replays are free. Request 2 arrives with an
already-expired budget ("deadline_ms": 0): the analyze-primed frontend
prefix replays from the cache, then SF0904 fires before the first pass
that would execute (partition). Request 4 repeats request 3's simulate
with the same zero budget after the cache is warm: every pass replays,
so the request still answers ok. The health probe (request 1, answered
by the reader before any work is admitted) reports the loop's vitals;
its uptime is normalized like the timings:

  $ cat > requests <<'EOF'
  > {"id": 1, "verb": "health"}
  > {"id": 2, "verb": "simulate", "deadline_ms": 0, "program_file": "../../examples/programs/diamond.json", "options": {"seed": 1, "validate": false}}
  > {"id": 3, "verb": "simulate", "program_file": "../../examples/programs/diamond.json", "options": {"seed": 1, "validate": false}}
  > {"id": 4, "verb": "simulate", "deadline_ms": 0, "program_file": "../../examples/programs/diamond.json", "options": {"seed": 1, "validate": false}}
  > {"id": 5, "verb": "shutdown"}
  > EOF
  $ echo '{"id": 0, "verb": "analyze", "program_file": "../../examples/programs/diamond.json"}' > prime
  $ cat prime requests | ../../bin/main.exe serve --ordered \
  >   | sed -E -e 's/"(queue_|exec_|uptime_)?seconds":[0-9.e+-]+/"\1seconds":_/g'
  {"id":0,"seq":0,"verb":"analyze","ok":true,"result":{"program":"diamond","latency_cycles":40,"delay_buffer_words":24,"expected_cycles":2088},"diagnostics":[],"passes":{"executed":2,"cached":0,"trace":[{"pass":"load-file","cached":false},{"pass":"delay-buffers","cached":false}]},"cache":{"hits":0,"misses":2,"joined":0},"timing":{"seconds":_,"queue_seconds":_,"exec_seconds":_,"worker":1}}
  {"id":1,"seq":1,"verb":"health","ok":true,"result":{"uptime_seconds":_,"in_flight":0,"serve_jobs":1,"workers_alive":1,"worker_crashes":0,"store_corrupt":0,"takeovers":0,"cache_entries":2},"diagnostics":[],"passes":{"executed":0,"cached":0,"trace":[]},"cache":{"hits":0,"misses":0,"joined":0},"timing":{"seconds":_,"queue_seconds":_,"exec_seconds":_,"worker":0}}
  {"id":2,"seq":2,"verb":"simulate","ok":false,"result":null,"diagnostics":[{"severity":"error","code":"SF0904","message":"deadline exceeded before pass partition"}],"passes":{"executed":0,"cached":2,"trace":[{"pass":"load-file","cached":true},{"pass":"delay-buffers","cached":true}]},"cache":{"hits":2,"misses":0,"joined":0},"timing":{"seconds":_,"queue_seconds":_,"exec_seconds":_,"worker":1}}
  {"id":3,"seq":3,"verb":"simulate","ok":true,"result":{"program":"diamond","latency_cycles":40,"delay_buffer_words":24,"expected_cycles":2088,"devices":1,"modeled_ops_per_s":882758620.68965518,"simulation":{"cycles":2092,"predicted_cycles":2088,"bytes_read":8192,"bytes_written":8192,"network_bytes":0}},"diagnostics":[],"passes":{"executed":3,"cached":2,"trace":[{"pass":"load-file","cached":true},{"pass":"delay-buffers","cached":true},{"pass":"partition","cached":false},{"pass":"performance-model","cached":false},{"pass":"simulate","cached":false}]},"cache":{"hits":2,"misses":3,"joined":0},"timing":{"seconds":_,"queue_seconds":_,"exec_seconds":_,"worker":1}}
  {"id":4,"seq":4,"verb":"simulate","ok":true,"result":{"program":"diamond","latency_cycles":40,"delay_buffer_words":24,"expected_cycles":2088,"devices":1,"modeled_ops_per_s":882758620.68965518,"simulation":{"cycles":2092,"predicted_cycles":2088,"bytes_read":8192,"bytes_written":8192,"network_bytes":0}},"diagnostics":[],"passes":{"executed":0,"cached":5,"trace":[{"pass":"load-file","cached":true},{"pass":"delay-buffers","cached":true},{"pass":"partition","cached":true},{"pass":"performance-model","cached":true},{"pass":"simulate","cached":true}]},"cache":{"hits":5,"misses":0,"joined":0},"timing":{"seconds":_,"queue_seconds":_,"exec_seconds":_,"worker":1}}
  {"id":5,"seq":5,"verb":"shutdown","ok":true,"result":null,"diagnostics":[],"passes":{"executed":0,"cached":0,"trace":[]},"cache":{"hits":0,"misses":0,"joined":0},"timing":{"seconds":_,"queue_seconds":_,"exec_seconds":_,"worker":0}}

On-disk blobs carry a checksum trailer. Damage every blob of a primed
store, then replay the same request: each damaged blob is detected,
quarantined aside as .corrupt and treated as a miss — the passes
re-execute (and re-populate the store) instead of replaying garbage,
and the corruption is counted in cache-stats:

  $ echo '{"id": 1, "verb": "analyze", "program_file": "../../examples/programs/diamond.json"}' > one
  $ ../../bin/main.exe serve --cache-dir store < one > /dev/null
  $ for f in store/*/*.blob; do printf 'sf-store-2\ngarbage' > "$f"; done
  $ { cat one; echo '{"id": 2, "verb": "cache-stats"}'; } \
  >   | ../../bin/main.exe serve --ordered --cache-dir store \
  >   | sed -E 's/"(queue_|exec_)?seconds":[0-9.e+-]+/"\1seconds":_/g'
  {"id":1,"seq":0,"verb":"analyze","ok":true,"result":{"program":"diamond","latency_cycles":40,"delay_buffer_words":24,"expected_cycles":2088},"diagnostics":[],"passes":{"executed":2,"cached":0,"trace":[{"pass":"load-file","cached":false},{"pass":"delay-buffers","cached":false}]},"cache":{"hits":0,"misses":2,"joined":0},"timing":{"seconds":_,"queue_seconds":_,"exec_seconds":_,"worker":1}}
  {"id":2,"seq":1,"verb":"cache-stats","ok":true,"result":{"hits":0,"misses":2,"stale":0,"evictions":0,"joined":0,"store_corrupt":2,"takeovers":0,"entries":2},"diagnostics":[],"passes":{"executed":0,"cached":0,"trace":[]},"cache":{"hits":0,"misses":0,"joined":0},"timing":{"seconds":_,"queue_seconds":_,"exec_seconds":_,"worker":1}}
  $ ls store/*/*.corrupt | wc -l | tr -d ' '
  2

`stencilflow cache verify` scrubs a store offline. The re-execution
above re-populated the damaged slots, so the store is clean again:

  $ ../../bin/main.exe cache verify --cache-dir store
  cache verify: 2 blob(s) scanned, 2 ok, 0 stale, 0 corrupt

Damage them again: verify quarantines and exits non-zero; a second pass
over the quarantined store is clean:

  $ for f in store/*/*.blob; do printf 'sf-store-2\ngarbage' > "$f"; done
  $ ../../bin/main.exe cache verify --cache-dir store
  cache verify: 2 blob(s) scanned, 0 ok, 0 stale, 2 corrupt (quarantined as .corrupt)
  [1]
  $ ../../bin/main.exe cache verify --cache-dir store
  cache verify: 0 blob(s) scanned, 0 ok, 0 stale, 0 corrupt
