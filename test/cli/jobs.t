The --jobs flag bounds host concurrency everywhere: the parallel
engine's spin/park policy, fault campaigns, under-provisioning probe
arms and autotune sweeps. Results must be byte-identical for every
value — --jobs is a throughput knob, never a semantics knob.

simulate --parallel with an explicit --jobs must match the sequential
run exactly (same report, same counters), whether under- or
over-provisioned relative to the host:

  $ ../../bin/main.exe simulate ../../examples/programs/hdiff_2dev.json \
  >   --devices 2 > sequential.out
  $ ../../bin/main.exe simulate ../../examples/programs/hdiff_2dev.json \
  >   --devices 2 --parallel --jobs 1 > par_jobs1.out
  $ ../../bin/main.exe simulate ../../examples/programs/hdiff_2dev.json \
  >   --devices 2 --parallel --jobs 8 > par_jobs8.out
  $ diff sequential.out par_jobs1.out && diff par_jobs1.out par_jobs8.out \
  >   && echo identical
  identical

validate-depths fans its campaign schedules and probe arms over the
executor pool; the verdict and every printed number must not depend on
the job count:

  $ ../../bin/main.exe validate-depths ../../examples/programs/diamond.json \
  >   --campaign 6 --jobs 1 > vd_jobs1.out
  $ ../../bin/main.exe validate-depths ../../examples/programs/diamond.json \
  >   --campaign 6 --jobs 4 > vd_jobs4.out
  $ diff vd_jobs1.out vd_jobs4.out && echo identical
  identical
  $ grep campaign vd_jobs4.out
  campaign: 6/6 seeded schedules bit-identical to the unperturbed run (2092 cycles)

autotune sweeps candidate widths concurrently; the table (and the
chosen width) stays in width order for any --jobs:

  $ ../../bin/main.exe autotune ../../examples/programs/diamond.json --jobs 1 > at_jobs1.out
  $ ../../bin/main.exe autotune ../../examples/programs/diamond.json --jobs 4 > at_jobs4.out
  $ diff at_jobs1.out at_jobs4.out && echo identical
  identical
