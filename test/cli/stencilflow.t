The CLI drives the full stack on the shipped example programs. The DAG
export carries the analysed delay-buffer depth on the Fig. 4 skip edge:

  $ ../../bin/main.exe dot ../../examples/programs/diamond.json
  digraph "diamond" {
    rankdir=TB;
    "x" [shape=box, style=filled, fillcolor=lightgrey];
    "a" [shape=ellipse];
    "b" [shape=ellipse];
    "c" [shape=ellipse, peripheries=2];
    "x" -> "a";
    "a" -> "b";
    "a" -> "c" [label="24"];
    "b" -> "c";
  }

Aggressive fusion collapses the three stencils onto the output:

  $ ../../bin/main.exe fuse ../../examples/programs/diamond.json | head -4
  fused 3 stencils into 1:
    b into c
    a into c
  {

Malformed programs are rejected with a diagnostic:

  $ echo '{"shape": [4], "inputs": {"a": {}}, "stencils": {"s": {"code": "ghost[0]"}}, "outputs": ["s"]}' > bad.json
  $ ../../bin/main.exe analyze bad.json
  stencilflow: bad.json: error[SF0301]: stencil s: access to undeclared field ghost
  [3]

The benchmark harness's deadlock section is deterministic end to end —
buffer analysis, full-rate streaming, and the extracted circular wait:

  $ ../../bench/main.exe deadlock | tail -6
  a->c occupancy over time (0..24 words):
    _################################_
  without buffers: deadlock detected at cycle 526, as in Fig. 4
  circular wait: a -> c -> b -> a
  
  All requested sections complete. See EXPERIMENTS.md for the comparison log.

Simulating a shipped program validates it against the reference:

  $ ../../bin/main.exe simulate ../../examples/programs/diamond.json | head -3
  program diamond: 1 stencil(s) over 1 device(s)
    fusion: 3 -> 1 stencils
    latency L = 40 cycles, expected C = L + N = 2088 cycles

Spatial tiling (Sec. IX-D) plans halos from the influence radius and
verifies the tiled schedule exactly:

  $ ../../bin/main.exe tile ../../examples/programs/diamond.json --tile 8,16
  tiling of diamond: tile 8x16, halo [0,8], 16 tiles, 75.0% redundant computation
  per-tile on-chip buffering: 41 elements (untiled: 41)
  tiled execution equals untiled: true

The vectorization autotuner picks W = 8 for horizontal diffusion — the
paper's choice, where memory demand first exceeds the effective bandwidth:

  $ ../../bin/main.exe autotune ../../examples/programs/horizontal_diffusion_small.json
       W    model GOp/s   bw-bound   fits  network
       1           39.0      false   true     true
       2           78.0      false   true     true
       4          156.0      false   true     true
       8          210.5       true   true     true   <- chosen
      16          210.5       true   true     true
