The domain-parallel simulator (simulate --parallel) must be observably
identical to the sequential engine: same report, same cycle count, same
pass counters (including sim-stalls and sim-net-bytes). hdiff_2dev is a
two-stage horizontal-diffusion pipeline that keeps two stencils after
fusion, so --devices 2 gives each its own device with a real
cross-device link between them.

  $ ../../bin/main.exe simulate ../../examples/programs/hdiff_2dev.json \
  >   --devices 2 --trace-passes \
  >   | sed -E 's/ +[0-9]+\.[0-9]+ ms/ _ ms/' > sequential.out
  $ ../../bin/main.exe simulate ../../examples/programs/hdiff_2dev.json \
  >   --devices 2 --parallel --trace-passes \
  >   | sed -E 's/ +[0-9]+\.[0-9]+ ms/ _ ms/' > parallel.out
  $ diff sequential.out parallel.out && echo identical
  identical

The counters line shows a genuine multi-device simulation — 2 devices,
network traffic over the link — and both engines agree on every number:

  $ grep 'simulate .*simulation' parallel.out
    simulate           simulation _ ms  stencils=2 edges=6 delay-words=128 devices=2 sim-cycles=8575 sim-stalls=287 sim-net-bytes=32768

Instrumented runs degrade to the sequential engine (stall attribution
observes the whole system each cycle), still with identical results —
the counters JSON of a --parallel --profile run matches the sequential
one byte for byte:

  $ ../../bin/main.exe simulate ../../examples/programs/hdiff_2dev.json \
  >   --devices 2 --counters-json 2>/dev/null > seq_counters.json
  $ ../../bin/main.exe simulate ../../examples/programs/hdiff_2dev.json \
  >   --devices 2 --counters-json --parallel 2>/dev/null > par_counters.json
  $ diff seq_counters.json par_counters.json && echo identical
  identical

A single-device placement degrades too (no idle domains): --parallel on
the default partition is byte-identical to the plain run.

  $ ../../bin/main.exe simulate ../../examples/programs/diamond.json > seq_1dev.out
  $ ../../bin/main.exe simulate ../../examples/programs/diamond.json --parallel > par_1dev.out
  $ diff seq_1dev.out par_1dev.out && echo identical
  identical
