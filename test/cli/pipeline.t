The analyze/simulate/codegen commands run through the instrumented pass
manager. --trace-passes prints one line per executed pass with its kind,
wall-clock time and the artifact counters it changed (times normalized
here for determinism):

  $ ../../bin/main.exe simulate ../../examples/programs/diamond.json --trace-passes \
  >   | sed -E 's/ +[0-9]+\.[0-9]+ ms/ _ ms/' | head -7
  pass trace (6 pass(es)):
    load-file          frontend _ ms  stencils=3 edges=4
    stencil-fusion     transform _ ms  stencils=3->1 edges=4->1
    delay-buffers      analysis _ ms  stencils=1 edges=1 delay-words=0
    partition          mapping _ ms  stencils=1 edges=1 delay-words=0 devices=1
    performance-model  analysis _ ms  stencils=1 edges=1 delay-words=0 devices=1
    simulate           simulation _ ms  stencils=1 edges=1 delay-words=0 devices=1 sim-cycles=2090 sim-stalls=1 sim-net-bytes=0

--optimize inserts the fold-cse pass (constant folding + CSE over the
hash-consed expression DAG); its counters report the work-op count
before/after, the number of shared DAG nodes, and the per-cell flops the
sharing saves relative to the fully inlined trees:

  $ ../../bin/main.exe analyze ../../examples/programs/horizontal_diffusion_small.json \
  >   --fuse --optimize --trace-passes 2>/dev/null \
  >   | sed -E 's/ +[0-9]+\.[0-9]+ ms/ _ ms/' | head -5
  pass trace (4 pass(es)):
    load-file          frontend _ ms  stencils=18 edges=68
    stencil-fusion     transform _ ms  stencils=18->4 edges=68->28
    fold-cse           transform _ ms  stencils=4 edges=28 opt-ops-before=266 opt-ops-after=264 opt-shared=48 opt-flops-saved=1612
    delay-buffers      analysis _ ms  stencils=4 edges=28 opt-ops-before=266 opt-ops-after=264 opt-shared=48 opt-flops-saved=1612 delay-words=768

--dump-ir writes every artifact after every pass into numbered
directories:

  $ ../../bin/main.exe analyze ../../examples/programs/diamond.json --dump-ir ir >/dev/null
  $ find ir -type f | sort
  ir/00-load-file/program.json
  ir/01-delay-buffers/analysis.txt
  ir/01-delay-buffers/program.json

Parse errors carry a stable code, a source span, and exit with the
frontend code 2. A truncated JSON file:

  $ printf '{"shape": [4,' > truncated.json
  $ ../../bin/main.exe analyze truncated.json
  stencilflow: truncated.json:1:14: error[SF0201]: unexpected end of input
  [2]

A malformed stencil DSL body points into the embedded code and names the
stencil:

  $ echo '{"shape": [4], "inputs": {"a": {}}, "stencils": {"s": {"code": "a[0] +"}}, "outputs": ["s"]}' > badsyntax.json
  $ ../../bin/main.exe analyze badsyntax.json
  stencilflow: badsyntax.json:1:7: error[SF0102]: unexpected end of input
    note: in the code of stencil s
  [2]

A lexically invalid body is distinguished by the lexer code:

  $ echo '{"shape": [4], "inputs": {"a": {}}, "stencils": {"s": {"code": "a[0] @ 1.0"}}, "outputs": ["s"]}' > badlex.json
  $ ../../bin/main.exe analyze badlex.json
  stencilflow: badlex.json:1:6: error[SF0101]: unexpected character @
    note: in the code of stencil s
  [2]

Semantic validation failures exit with the program-layer code 3:

  $ echo '{"shape": [4], "inputs": {"a": {}}, "stencils": {"s": {"code": "ghost[0]"}}, "outputs": ["s"]}' > bad.json
  $ ../../bin/main.exe codegen bad.json
  stencilflow: bad.json: error[SF0301]: stencil s: access to undeclared field ghost
  [3]

--diag-json renders the same diagnostics as machine-readable JSON on
stdout:

  $ ../../bin/main.exe analyze bad.json --diag-json
  {
    "diagnostics": [
      {
        "severity": "error",
        "code": "SF0301",
        "span": {
          "file": "bad.json"
        },
        "message": "stencil s: access to undeclared field ghost"
      }
    ]
  }
  [3]

A failing pass still reports the timings of the executed prefix:

  $ ../../bin/main.exe analyze bad.json --trace-passes 2>/dev/null \
  >   | sed -E 's/ +[0-9]+\.[0-9]+ ms/ _ ms/'
  pass trace (1 pass(es)):
    load-file          frontend _ ms [FAILED]
