Simulator telemetry through the CLI. --profile runs the engine
instrumented and appends the stall-attribution table: every blocked
component ranked by blocked cycles, with its dominant cause and the
channel it was blocked on (the writer waits out the pipeline's fill
latency on its input FIFO):

  $ ../../bin/main.exe simulate ../../examples/programs/diamond.json --profile
  program diamond: 1 stencil(s) over 1 device(s)
    fusion: 3 -> 1 stencils
    latency L = 40 cycles, expected C = L + N = 2088 cycles
    modelled performance: 1.47 GOp/s
    simulated 2090 cycles (model: 2088), 8192 B read, 8192 B written
  
  stall attribution (2090 cycles simulated, 43 blocked component-cycles):
    component          kind    blocked            busy  top cause                top blocking channel
    write.c@0          writer       42   2.0%     2048  input-starved:42         c->mem:42
    c                  unit          1   0.0%     2088  input-starved:1          x->c:1
  


--counters-json dumps the typed counter registry — per-component
busy/stalled cycles, pushes, pops, bytes, the per-cause stall breakdown
with blamed channels, and per-channel FIFO statistics:

  $ ../../bin/main.exe simulate ../../examples/programs/diamond.json --counters-json \
  >   | sed -n '7,26p'
  {
    "cycles": 2090,
    "telemetry": true,
    "components": [
      {
        "name": "c",
        "kind": "unit",
        "busy_cycles": 2088,
        "stalled_cycles": 1,
        "pushes": 2048,
        "pops": 2048,
        "bytes": 0,
        "stalls_by_cause": {
          "input-starved": 1
        },
        "blocked_on": {
          "x->c": 1
        }
      },
      {

--trace-out writes the run as Chrome trace_event JSON for
chrome://tracing or Perfetto: thread-name metadata per component
("M"), complete events ("X") for active phases and stall spans, and
counter events ("C") for sampled channel occupancies:

  $ ../../bin/main.exe simulate ../../examples/programs/diamond.json --trace-out trace.json \
  >   > /dev/null
  $ sed -n '1,21p' trace.json
  {
    "traceEvents": [
      {
        "name": "process_name",
        "ph": "M",
        "pid": 0,
        "tid": 0,
        "ts": 0,
        "args": {
          "name": "stencilflow simulation"
        }
      },
      {
        "name": "thread_name",
        "ph": "M",
        "pid": 0,
        "tid": 0,
        "ts": 0,
        "args": {
          "name": "unit c"
        }

Every event phase used is a valid trace_event type, and the stall spans
name the blamed channel in their args:

  $ grep -o '"ph": "[MXC]"' trace.json | sort | uniq -c | sed 's/^ *//'
  262 "ph": "C"
  4 "ph": "M"
  5 "ph": "X"
  $ grep -c '"blocking_channel":' trace.json
  2
