module Compile = Sf_reference.Compile
module Interp = Sf_reference.Interp
open Sf_ir

(* The compiled closures must agree exactly with the tree-walking
   evaluator on arbitrary expressions and access environments. *)
let prop_compile_equals_eval =
  QCheck.Test.make ~count:500 ~name:"compiled expressions equal the evaluator"
    (QCheck.make ~print:Expr.to_string Test_expr.expr_gen)
    (fun e ->
      let lookup ~field ~offsets =
        float_of_int (Hashtbl.hash (field, offsets) mod 31) /. 13.
      in
      let var_value v = float_of_int (Hashtbl.hash v mod 7) /. 3. in
      let interpreted = Interp.eval_expr ~lookup ~env:(fun v -> Some (var_value v)) e in
      let compiled =
        Compile.expr
          ~access:(fun ~field ~offsets -> fun () -> lookup ~field ~offsets)
          ~env:(fun v -> Some (fun () -> var_value v))
          e ()
      in
      (Float.is_nan interpreted && Float.is_nan compiled) || interpreted = compiled)

let test_body_lets_evaluate_once () =
  (* Each let is computed once per invocation; the access counter shows
     exactly one evaluation of the shared access per call. *)
  let counter = ref 0 in
  let access ~field:_ ~offsets:_ =
    fun () ->
      incr counter;
      2.
  in
  let body =
    {
      Expr.lets = [ ("t", Expr.Access { field = "a"; offsets = [ 0 ] }) ];
      result = Expr.Binary (Expr.Mul, Expr.Var "t", Expr.Var "t");
    }
  in
  let f = Compile.body ~access body in
  Alcotest.(check (float 0.)) "t*t" 4. (f ());
  Alcotest.(check int) "access evaluated once" 1 !counter;
  Alcotest.(check (float 0.)) "second call" 4. (f ());
  Alcotest.(check int) "once per call" 2 !counter

let test_unbound_variable_rejected () =
  match
    Compile.expr
      ~access:(fun ~field:_ ~offsets:_ -> fun () -> 0.)
      ~env:(fun _ -> None)
      (Expr.Var "ghost")
  with
  | exception Invalid_argument _ -> ()
  | (f : unit Compile.fn) ->
      ignore f;
      Alcotest.fail "unbound variable must be rejected"

let test_let_ordering () =
  (* A binding may reference earlier bindings but not later ones. *)
  let access ~field:_ ~offsets:_ = fun () -> 3. in
  let ok =
    {
      Expr.lets =
        [
          ("a", Expr.Access { field = "x"; offsets = [] });
          ("b", Expr.Binary (Expr.Add, Expr.Var "a", Expr.Const 1.));
        ];
      result = Expr.Var "b";
    }
  in
  Alcotest.(check (float 0.)) "forward refs work" 4. (Compile.body ~access ok ());
  let backwards =
    {
      Expr.lets = [ ("a", Expr.Var "b"); ("b", Expr.Const 1.) ];
      result = Expr.Var "a";
    }
  in
  match Compile.body ~access backwards with
  | exception Invalid_argument _ -> ()
  | (f : unit Compile.fn) ->
      ignore f;
      Alcotest.fail "backward reference must be rejected"

let suite =
  [
    QCheck_alcotest.to_alcotest prop_compile_equals_eval;
    Alcotest.test_case "lets evaluate once per call" `Quick test_body_lets_evaluate_once;
    Alcotest.test_case "unbound variables rejected" `Quick test_unbound_variable_rejected;
    Alcotest.test_case "let ordering enforced" `Quick test_let_ordering;
  ]
