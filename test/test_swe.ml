open Sf_ir
module Swe = Sf_kernels.Swe
module Engine = Sf_sim.Engine
module Interp = Sf_reference.Interp
module Tensor = Sf_reference.Tensor
module Timeloop = Sf_sim.Timeloop

let cheap = Engine.Config.make ~latency:Sf_analysis.Latency.cheap ()

let test_structure () =
  let p = Swe.program () in
  Alcotest.(check int) "5 stencils" 5 (List.length p.Program.stencils);
  Alcotest.(check int) "3 outputs" 3 (List.length p.Program.outputs);
  (* Coupled system: the momentum updates read several fields. *)
  let hu = Option.get (Program.find_stencil p "hu_out") in
  Alcotest.(check bool) "hu_out reads 4+ fields" true
    (List.length (Stencil.input_fields hu) >= 4);
  let profile = Sf_analysis.Op_count.of_program p in
  Alcotest.(check bool) "divisions present" true (profile.Sf_analysis.Op_count.profile.Expr.divs > 0);
  Alcotest.(check bool) "branch present" true
    (profile.Sf_analysis.Op_count.profile.Expr.data_branches > 0)

let test_simulates_and_validates () =
  let p = Swe.program ~shape:[ 12; 12 ] () in
  match Engine.run_and_validate ~config:cheap ~inputs:(Swe.stable_inputs p) p with
  | Ok _ -> ()
  | Error m -> Alcotest.fail (Sf_support.Diag.to_string m)

let test_mass_is_plausible () =
  (* Lax-Friedrichs with copy boundaries keeps the water volume of a hump
     near its initial value over a few steps (no blow-up). *)
  let p = Swe.program ~shape:[ 16; 16 ] () in
  let inputs = Swe.stable_inputs p in
  let mass t = Array.fold_left ( +. ) 0. t.Tensor.data in
  let initial = mass (List.assoc "h" inputs) in
  let finals = Timeloop.run_reference p ~steps:5 ~feedback:Swe.feedback ~inputs in
  let final = mass (List.assoc "h_out" finals) in
  Alcotest.(check bool)
    (Printf.sprintf "mass %.3f -> %.3f stays within 2%%" initial final)
    true
    (Float.abs (final -. initial) /. initial < 0.02);
  Array.iter
    (fun v -> Alcotest.(check bool) "heights stay finite and positive" true (v > 0.5 && v < 2.))
    (List.assoc "h_out" finals).Tensor.data

let test_symmetric_hump_stays_symmetric () =
  (* With a centred symmetric hump and symmetric scheme, h stays
     mirror-symmetric across both axes (a discretization-correctness
     check of the generator, seed noise disabled by averaging). *)
  let shape = [ 16; 16 ] in
  let p = Swe.program ~shape () in
  let hump =
    Tensor.of_fn shape (function
      | [ j; i ] ->
          let dj = float_of_int (2 * j - 15) and di = float_of_int (2 * i - 15) in
          1. +. (0.1 *. Float.exp (-0.02 *. ((dj *. dj) +. (di *. di))))
      | _ -> 1.)
  in
  let inputs =
    [
      ("h", hump);
      ("hu", Tensor.create shape);
      ("hv", Tensor.create shape);
      ("g", Tensor.of_array [ 1 ] [| 9.81 |]);
      ("dtdx", Tensor.of_array [ 1 ] [| 0.01 |]);
      ("dtdy", Tensor.of_array [ 1 ] [| 0.01 |]);
    ]
  in
  let finals = Timeloop.run_reference p ~steps:3 ~feedback:Swe.feedback ~inputs in
  let h = List.assoc "h_out" finals in
  for j = 0 to 15 do
    for i = 0 to 15 do
      Alcotest.(check (float 1e-9)) "mirror i" (Tensor.get h [ j; i ])
        (Tensor.get h [ j; 15 - i ]);
      Alcotest.(check (float 1e-9)) "mirror j" (Tensor.get h [ j; i ])
        (Tensor.get h [ 15 - j; i ])
    done
  done

let test_flat_lake_is_steady () =
  (* A flat lake at rest is a steady state of the scheme. *)
  let shape = [ 8; 8 ] in
  let p = Swe.program ~shape () in
  let inputs =
    [
      ("h", Tensor.create ~init:1. shape);
      ("hu", Tensor.create shape);
      ("hv", Tensor.create shape);
      ("g", Tensor.of_array [ 1 ] [| 9.81 |]);
      ("dtdx", Tensor.of_array [ 1 ] [| 0.01 |]);
      ("dtdy", Tensor.of_array [ 1 ] [| 0.01 |]);
    ]
  in
  let finals = Timeloop.run_reference p ~steps:4 ~feedback:Swe.feedback ~inputs in
  Array.iter
    (fun v -> Alcotest.(check (float 1e-9)) "h stays 1" 1. v)
    (List.assoc "h_out" finals).Tensor.data;
  Array.iter
    (fun v -> Alcotest.(check (float 1e-9)) "hu stays 0" 0. v)
    (List.assoc "hu_out" finals).Tensor.data

let suite =
  [
    Alcotest.test_case "coupled-system structure" `Quick test_structure;
    Alcotest.test_case "simulates and validates" `Quick test_simulates_and_validates;
    Alcotest.test_case "mass conservation over steps" `Quick test_mass_is_plausible;
    Alcotest.test_case "symmetry preservation" `Quick test_symmetric_hump_stays_symmetric;
    Alcotest.test_case "lake at rest is steady" `Quick test_flat_lake_is_steady;
  ]
