open Sf_ir
module Iterative = Sf_kernels.Iterative
module Hdiff = Sf_kernels.Hdiff
module Engine = Sf_sim.Engine
module Interp = Sf_reference.Interp
module Tensor = Sf_reference.Tensor

let cheap = Engine.Config.make ~latency:Sf_analysis.Latency.cheap ()

let test_all_kinds_validate () =
  List.iter
    (fun kind ->
      let shape =
        match kind with
        | Iterative.Jacobi3d | Iterative.Diffusion3d -> [ 4; 6; 8 ]
        | Iterative.Jacobi2d | Iterative.Diffusion2d | Iterative.Laplace2d -> [ 8; 12 ]
      in
      let p = Iterative.chain ~shape kind ~length:3 in
      match Engine.run_and_validate ~config:cheap p with
      | Ok _ -> ()
      | Error m -> Alcotest.fail (Iterative.kind_name kind ^ ": " ^ Sf_support.Diag.to_string m))
    [ Iterative.Jacobi2d; Iterative.Jacobi3d; Iterative.Diffusion2d; Iterative.Diffusion3d;
      Iterative.Laplace2d ]

let test_flop_counts () =
  (* 7-point Jacobi 3D: 6 adds + 1 mul. *)
  Alcotest.(check int) "jacobi3d" 7 (Iterative.flops_per_cell Iterative.Jacobi3d);
  Alcotest.(check int) "jacobi2d" 4 (Iterative.flops_per_cell Iterative.Jacobi2d);
  Alcotest.(check int) "diffusion2d" 9 (Iterative.flops_per_cell Iterative.Diffusion2d);
  Alcotest.(check int) "diffusion3d" 13 (Iterative.flops_per_cell Iterative.Diffusion3d);
  Alcotest.(check int) "laplace2d" 5 (Iterative.flops_per_cell Iterative.Laplace2d)

let test_jacobi_smoothing () =
  (* Jacobi iteration is an averaging operator: with constant-1 input and
     copy-like interior, interior values stay bounded by the input range. *)
  let p = Iterative.chain ~shape:[ 8; 8 ] Iterative.Jacobi2d ~length:2 in
  let a = Tensor.create ~init:1. [ 8; 8 ] in
  let r = (List.assoc "f2" (Interp.run p ~inputs:[ ("f0", a) ])).Interp.tensor in
  Array.iter
    (fun v -> Alcotest.(check bool) "bounded" true (v >= 0. && v <= 1.))
    r.Tensor.data;
  (* Center cells far from the zero boundary remain exactly 1. *)
  Alcotest.(check (float 1e-12)) "interior untouched" 1. (Tensor.get r [ 4; 4 ])

let test_chain_is_iteration () =
  (* Chaining n stencils equals applying the single stencil n times
     through off-chip round trips. *)
  let single = Iterative.chain ~shape:[ 6; 8 ] Iterative.Diffusion2d ~length:1 in
  let chain3 = Iterative.chain ~shape:[ 6; 8 ] Iterative.Diffusion2d ~length:3 in
  let inputs = Interp.random_inputs single in
  let step data =
    (List.assoc "f1" (Interp.run single ~inputs:[ ("f0", data) ])).Interp.tensor
  in
  let manual = step (step (step (List.assoc "f0" inputs))) in
  let chained = (List.assoc "f3" (Interp.run chain3 ~inputs)).Interp.tensor in
  Alcotest.(check bool) "equal" true (Tensor.max_abs_diff manual chained < 1e-12)

let test_hdiff_structure () =
  let p = Hdiff.program ~shape:[ 4; 8; 8 ] () in
  Alcotest.(check int) "stencil count" Hdiff.stencil_count (List.length p.Program.stencils);
  Alcotest.(check int) "18 stencils" 18 Hdiff.stencil_count;
  Alcotest.(check int) "4 outputs" 4 (List.length p.Program.outputs);
  Alcotest.(check int) "10 input fields" 10 (List.length p.Program.inputs);
  (* Complex dependencies: the updates consume multiple producers. *)
  let out_u = Option.get (Program.find_stencil p "u_out") in
  let producer_inputs =
    List.filter (fun f -> Option.is_some (Program.find_stencil p f)) (Stencil.input_fields out_u)
  in
  Alcotest.(check bool) "u_out reads 3 producers" true (List.length producer_inputs >= 3)

let test_hdiff_simulates () =
  let p = Hdiff.program ~shape:[ 4; 8; 8 ] () in
  match Engine.run_and_validate ~config:cheap p with
  | Ok stats ->
      Alcotest.(check bool) "cycles near model" true
        (stats.Engine.cycles - stats.Engine.predicted_cycles < 200)
  | Error m -> Alcotest.fail (Sf_support.Diag.to_string m)

let test_hdiff_vectorized_simulates () =
  let p = Hdiff.program ~shape:[ 4; 8; 8 ] ~vector_width:4 () in
  match Engine.run_and_validate ~config:cheap p with
  | Ok _ -> ()
  | Error m -> Alcotest.fail (Sf_support.Diag.to_string m)

let test_hdiff_init_fraction_negligible () =
  (* Sec. IX: on the MeteoSwiss domain the initialization latency is
     ~0.7% of total iterations. *)
  let p = Hdiff.program () in
  let frac = Sf_analysis.Runtime_model.initialization_fraction p in
  Alcotest.(check bool)
    (Printf.sprintf "init fraction %.4f < 2%%" frac)
    true (frac < 0.02)

let test_meteoswiss_domain () =
  Alcotest.(check (list int)) "80x128x128" [ 80; 128; 128 ] Hdiff.meteoswiss_shape;
  let p = Hdiff.program () in
  Alcotest.(check int) "cells" (80 * 128 * 128) (Program.cells p)

let suite =
  [
    Alcotest.test_case "all kernel kinds validate in simulation" `Slow test_all_kinds_validate;
    Alcotest.test_case "flop counts per kernel" `Quick test_flop_counts;
    Alcotest.test_case "jacobi smoothing sanity" `Quick test_jacobi_smoothing;
    Alcotest.test_case "chains equal repeated application" `Quick test_chain_is_iteration;
    Alcotest.test_case "hdiff DAG structure (sec 9A)" `Quick test_hdiff_structure;
    Alcotest.test_case "hdiff simulates and validates" `Slow test_hdiff_simulates;
    Alcotest.test_case "vectorized hdiff validates" `Slow test_hdiff_vectorized_simulates;
    Alcotest.test_case "hdiff init fraction negligible" `Quick test_hdiff_init_fraction_negligible;
    Alcotest.test_case "meteoswiss benchmark domain" `Quick test_meteoswiss_domain;
  ]
