open Sf_ir
module Opt = Sf_sdfg.Opt
module Fusion = Sf_sdfg.Fusion
module Interp = Sf_reference.Interp
module Parser = Sf_frontend.Parser
module E = Builder.E

let expr_testable = Alcotest.testable (fun fmt e -> Expr.pp fmt e) Expr.equal
let parse src = Fixtures.ok1 (Parser.parse_expr src)

let check_fold src expected () =
  Alcotest.check expr_testable src (parse expected) (Opt.fold_constants (parse src))

let fold_cases =
  [
    ("1.0 + 2.0 * 3.0", "7.0");
    ("a[0] + 0.0", "a[0]");
    ("0.0 + a[0]", "a[0]");
    ("a[0] - 0.0", "a[0]");
    ("a[0] * 1.0", "a[0]");
    ("1.0 * a[0]", "a[0]");
    ("a[0] / 1.0", "a[0]");
    ("sqrt(16.0)", "4.0");
    ("min(2.0, 3.0) + max(2.0, 3.0)", "5.0");
    ("1.0 < 2.0 ? a[0] : b[0]", "a[0]");
    ("2.0 < 1.0 ? a[0] : b[0] + 0.0", "b[0]");
    (* Nested folding. *)
    ("a[0] * (2.0 - 1.0) + (3.0 - 3.0)", "a[0]");
    (* x * 0 is NOT folded (NaN/Inf semantics). *)
    ("a[0] * 0.0", "a[0] * 0.0");
  ]

let test_fold_preserves_semantics =
  let gen = QCheck.Gen.oneofl (List.map (fun (src, _) -> src) fold_cases) in
  ignore gen;
  fun () ->
    let lookup ~field:_ ~offsets:_ = 1.75 in
    List.iter
      (fun (src, _) ->
        let e = parse src in
        let before = Interp.eval_expr ~lookup ~env:(fun _ -> None) e in
        let after = Interp.eval_expr ~lookup ~env:(fun _ -> None) (Opt.fold_constants e) in
        Alcotest.(check (float 1e-12)) src before after)
      fold_cases

let test_cse_extracts_shared () =
  (* (a+b)*(a+b) -> let t = a+b in t*t *)
  let body =
    { Expr.lets = []; result = E.((acc "a" [ 0 ] +% acc "b" [ 0 ]) *% (acc "a" [ 0 ] +% acc "b" [ 0 ])) }
  in
  let out = Opt.cse body in
  Alcotest.(check int) "one binding" 1 (List.length out.Expr.lets);
  let profile = Expr.body_op_profile out in
  Alcotest.(check int) "one add remains" 1 profile.Expr.adds;
  Alcotest.(check int) "one mul" 1 profile.Expr.muls

let test_cse_nested_sharing () =
  (* sqrt(a+b) used twice, and (a+b) also used separately: the inner
     shared node is bound before the outer one. *)
  let ab = E.(acc "a" [ 0 ] +% acc "b" [ 0 ]) in
  let body =
    { Expr.lets = []; result = E.(sqrt_ ab +% sqrt_ ab +% ab) }
  in
  let out = Opt.cse ~min_size:2 body in
  Alcotest.(check bool) "at least two bindings" true (List.length out.Expr.lets >= 2);
  let profile = Expr.body_op_profile out in
  Alcotest.(check int) "adds reduced to 3" 3 profile.Expr.adds;
  Alcotest.(check int) "one sqrt" 1 profile.Expr.sqrts

let test_cse_nested_occurrences_bind_once () =
  (* sqrt(a+b) * sqrt(a+b): the inner (a+b) occurs twice in the tree but
     only through the single shared sqrt parent — it must not get its own
     redundant __cseN binding (the historical string-keyed CSE counted
     per textual occurrence and emitted one). *)
  let ab = E.(acc "a" [ 0 ] +% acc "b" [ 0 ]) in
  let body = { Expr.lets = []; result = E.(sqrt_ ab *% sqrt_ ab) } in
  let out = Opt.cse ~min_size:2 body in
  Alcotest.(check int) "exactly one binding (the sqrt)" 1 (List.length out.Expr.lets);
  (match out.Expr.lets with
  | [ (_, Expr.Call (Expr.Sqrt, _)) ] -> ()
  | _ -> Alcotest.fail "expected the shared sqrt to be the single binding");
  let profile = Expr.body_op_profile out in
  Alcotest.(check int) "one add" 1 profile.Expr.adds;
  Alcotest.(check int) "one sqrt" 1 profile.Expr.sqrts;
  Alcotest.(check int) "one mul" 1 profile.Expr.muls

let test_cse_no_sharing_is_identity_profile () =
  let body = { Expr.lets = []; result = E.(acc "a" [ 0 ] +% acc "b" [ 0 ]) } in
  let out = Opt.cse body in
  Alcotest.(check int) "no bindings" 0 (List.length out.Expr.lets);
  Alcotest.check expr_testable "unchanged" body.Expr.result out.Expr.result

let semantically_equal p q =
  let inputs = Interp.random_inputs p in
  let rp = Interp.run p ~inputs and rq = Interp.run q ~inputs in
  List.for_all
    (fun (name, (r : Interp.result)) ->
      match List.assoc_opt name rq with
      | None -> false
      | Some r' ->
          Sf_reference.Tensor.max_abs_diff r.Interp.tensor r'.Interp.tensor < 1e-12)
    rp

let test_optimize_preserves_program_semantics () =
  List.iter
    (fun p ->
      let optimized = Opt.optimize p in
      Alcotest.(check bool) (p.Program.name ^ " semantics") true (semantically_equal p optimized))
    [
      Fixtures.laplace2d ();
      Fixtures.kitchen_sink ();
      Fixtures.fork ();
      Sf_kernels.Hdiff.program ~shape:[ 3; 6; 6 ] ();
    ]

let test_fusion_plus_cse_recovers_sharing () =
  (* Fusing a chain duplicates the producer per consuming access — but
     only in the *tree* view. Fusion substitutes on the hash-consed DAG
     and re-extracts, so the fused body already carries its sharing as
     let bindings: its work flop count (shared nodes once) is strictly
     below its fully inlined tree flop count, and a subsequent optimize
     pass has nothing left to recover. *)
  let p = Fixtures.chain ~shape:[ 8; 12 ] ~n:3 () in
  let fused, _ = Fusion.fuse_all p in
  let body = (List.hd fused.Program.stencils).Stencil.body in
  let work = Expr.flop_count (Dag.work_profile (Dag.of_body body)) in
  let tree = Expr.flop_count (Dag.tree_profile (Dag.of_body body)) in
  Alcotest.(check bool)
    (Printf.sprintf "fused body keeps sharing (work %d < tree %d)" work tree)
    true (work < tree);
  Alcotest.(check int) "body_op_profile counts shared work once" work
    (Expr.flop_count (Expr.body_op_profile body));
  let optimized = Opt.optimize fused in
  let after =
    Expr.flop_count (Expr.body_op_profile (List.hd optimized.Program.stencils).Stencil.body)
  in
  Alcotest.(check bool)
    (Printf.sprintf "optimize does not add ops (%d -> %d)" work after)
    true (after <= work);
  Alcotest.(check bool) "still correct" true (semantically_equal fused optimized)

let test_nan_const_folding_pins_ieee () =
  (* IEEE comparison semantics pinned across every evaluator: NaN is
     Eq-false and Ne-true in the constant folder, the interpreter, and
     the compiled simulator path alike. Regression guard for the folder
     silently adopting reflexive equality. *)
  let nan_ = Float.nan in
  Alcotest.(check (float 0.)) "fold Eq(nan,nan) = false" 0. (Opt.eval_const_binop Expr.Eq nan_ nan_);
  Alcotest.(check (float 0.)) "fold Ne(nan,nan) = true" 1. (Opt.eval_const_binop Expr.Ne nan_ nan_);
  Alcotest.(check (float 0.)) "fold Eq(nan,1) = false" 0. (Opt.eval_const_binop Expr.Eq nan_ 1.);
  Alcotest.(check (float 0.)) "fold Ne(nan,1) = true" 1. (Opt.eval_const_binop Expr.Ne nan_ 1.);
  (* 0/0 == 0/0 is a NaN comparison: the false branch must be chosen by
     folding, and the unfolded program must agree through the reference
     interpreter and the engine's compiled stencil units. *)
  let cond = E.(c 0. /% c 0. ==% (c 0. /% c 0.)) in
  let picked = Opt.fold_constants E.(sel cond (acc "a" [ 0; 0 ] *% c 100.) (acc "a" [ 0; 0 ] +% c 2.)) in
  Alcotest.(check bool) "fold picks the false branch" true
    (Expr.equal picked E.(acc "a" [ 0; 0 ] +% c 2.));
  let b = Builder.create ~name:"nan_eq" ~shape:[ 4; 8 ] () in
  Builder.input b "a";
  Builder.stencil b "s" E.(sel cond (acc "a" [ 0; 0 ] *% c 100.) (acc "a" [ 0; 0 ] +% c 2.));
  Builder.output b "s";
  let p = Builder.finish b in
  let inputs = Interp.random_inputs p in
  let expect i = Sf_reference.Tensor.get_flat (List.assoc "a" inputs) i +. 2. in
  let check_result what (r : Interp.result) =
    Array.iteri
      (fun i v ->
        if v <> expect i then
          Alcotest.failf "%s: cell %d is %h, want %h" what i v (expect i))
      r.Interp.tensor.Sf_reference.Tensor.data
  in
  check_result "interpreter" (List.assoc "s" (Interp.run p ~inputs));
  (match Sf_sim.Engine.run ~inputs p with
  | Ok stats -> check_result "simulator" (List.assoc "s" stats.Sf_sim.Engine.results)
  | Error d -> Alcotest.fail (Sf_support.Diag.to_string d));
  (* And the folded program agrees with itself through the sim, i.e. the
     optimizer did not change what the engine computes. *)
  match Sf_sim.Engine.run ~inputs (Opt.optimize p) with
  | Ok stats -> check_result "optimized simulator" (List.assoc "s" stats.Sf_sim.Engine.results)
  | Error d -> Alcotest.fail (Sf_support.Diag.to_string d)

let test_optimized_simulates () =
  let p = Opt.optimize (fst (Fusion.fuse_all (Fixtures.kitchen_sink ()))) in
  match Sf_sim.Engine.run_and_validate p with
  | Ok _ -> ()
  | Error m -> Alcotest.fail (Sf_support.Diag.to_string m)

(* Property: folding and CSE preserve evaluation on random expressions
   and random access values. *)
let prop_fold_preserves =
  QCheck.Test.make ~count:300 ~name:"constant folding preserves evaluation"
    (QCheck.make ~print:Expr.to_string Test_expr.expr_gen)
    (fun e ->
      let lookup ~field ~offsets =
        float_of_int (Hashtbl.hash (field, offsets) mod 17) /. 7.
      in
      let env _ = Some 0.5 in
      let a = Interp.eval_expr ~lookup ~env e in
      let b = Interp.eval_expr ~lookup ~env (Opt.fold_constants e) in
      (Float.is_nan a && Float.is_nan b) || a = b)

let prop_cse_preserves =
  QCheck.Test.make ~count:300 ~name:"CSE preserves evaluation and never adds ops"
    (QCheck.make ~print:Expr.to_string Test_expr.expr_gen)
    (fun e ->
      (* Use a closed body: replace free vars with accesses first. *)
      let closed =
        List.fold_left
          (fun acc v -> Expr.substitute_var ~name:v ~value:(Expr.Access { field = "a"; offsets = [ 0 ] }) acc)
          e (Expr.free_vars e)
      in
      let body = { Expr.lets = []; result = closed } in
      let out = Opt.cse body in
      let lookup ~field ~offsets =
        float_of_int (Hashtbl.hash (field, offsets) mod 23) /. 11.
      in
      let a = Interp.eval_expr ~lookup ~env:(fun _ -> None) closed in
      let bindings = Hashtbl.create 8 in
      List.iter
        (fun (n, bexpr) ->
          Hashtbl.replace bindings n
            (Interp.eval_expr ~lookup ~env:(Hashtbl.find_opt bindings) bexpr))
        out.Expr.lets;
      let b = Interp.eval_expr ~lookup ~env:(Hashtbl.find_opt bindings) out.Expr.result in
      let same = (Float.is_nan a && Float.is_nan b) || a = b in
      let before = Expr.flop_count (Expr.op_profile closed) in
      let after = Expr.flop_count (Expr.body_op_profile out) in
      same && after <= before)

let suite =
  List.map
    (fun (src, expected) ->
      Alcotest.test_case (Printf.sprintf "fold: %s" src) `Quick (check_fold src expected))
    fold_cases
  @ [
      Alcotest.test_case "folding preserves values" `Quick test_fold_preserves_semantics;
      Alcotest.test_case "CSE extracts shared subtrees" `Quick test_cse_extracts_shared;
      Alcotest.test_case "CSE binds inner shares first" `Quick test_cse_nested_sharing;
      Alcotest.test_case "CSE binds nested occurrences once" `Quick
        test_cse_nested_occurrences_bind_once;
      Alcotest.test_case "CSE without sharing changes nothing" `Quick
        test_cse_no_sharing_is_identity_profile;
      Alcotest.test_case "optimize preserves program semantics" `Quick
        test_optimize_preserves_program_semantics;
      Alcotest.test_case "fusion + CSE recovers sharing" `Quick test_fusion_plus_cse_recovers_sharing;
      Alcotest.test_case "NaN Eq/Ne folding pins IEEE across layers" `Quick
        test_nan_const_folding_pins_ieee;
      Alcotest.test_case "optimized programs simulate" `Quick test_optimized_simulates;
      QCheck_alcotest.to_alcotest prop_fold_preserves;
      QCheck_alcotest.to_alcotest prop_cse_preserves;
    ]
