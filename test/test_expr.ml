open Sf_ir
module E = Builder.E

let expr_testable = Alcotest.testable (fun fmt e -> Expr.pp fmt e) Expr.equal

let test_accesses_dedup () =
  let e = E.(acc "a" [ 0; 1 ] +% (acc "a" [ 0; 1 ] *% acc "b" [ -1; 0 ])) in
  Alcotest.(check int) "two distinct accesses" 2 (List.length (Expr.accesses e));
  Alcotest.(check bool) "a first" true (fst (List.hd (Expr.accesses e)) = "a")

let test_inline_lets () =
  let body =
    {
      Expr.lets = [ ("t", E.(acc "a" [ 0 ] +% c 1.)); ("u", E.(var "t" *% var "t")) ];
      result = E.(var "u" -% var "t");
    }
  in
  let inlined = Expr.inline_lets body in
  Alcotest.(check (list string)) "no residual vars" [] (Expr.free_vars inlined);
  let expected = E.((acc "a" [ 0 ] +% c 1.) *% (acc "a" [ 0 ] +% c 1.) -% (acc "a" [ 0 ] +% c 1.)) in
  Alcotest.check expr_testable "substituted" expected inlined

let test_shift () =
  let e = E.(acc "a" [ 0; 1 ] +% acc "b" [ 2; 2 ]) in
  let shifted = Expr.shift_accesses ~field:"a" ~delta:[ 1; -1 ] e in
  Alcotest.check expr_testable "only a shifted" E.(acc "a" [ 1; 0 ] +% acc "b" [ 2; 2 ]) shifted;
  let all = Expr.shift_all_accesses ~delta:[ 1; 1 ] e in
  Alcotest.check expr_testable "all shifted" E.(acc "a" [ 1; 2 ] +% acc "b" [ 3; 3 ]) all

let test_op_profile () =
  (* (a - b) * c / sqrt(d) + (e < 0 ? min(a, b) : max(a, b)) *)
  let a = E.acc "a" [ 0 ] and b = E.acc "b" [ 0 ] in
  let e =
    E.(
      (a -% b) *% acc "c" [ 0 ] /% sqrt_ (acc "d" [ 0 ])
      +% sel (acc "e" [ 0 ] <% c 0.) (min_ a b) (max_ a b))
  in
  let p = Expr.op_profile e in
  Alcotest.(check int) "adds" 2 p.Expr.adds;
  Alcotest.(check int) "muls" 1 p.Expr.muls;
  Alcotest.(check int) "divs" 1 p.Expr.divs;
  Alcotest.(check int) "sqrts" 1 p.Expr.sqrts;
  Alcotest.(check int) "mins" 1 p.Expr.mins;
  Alcotest.(check int) "maxs" 1 p.Expr.maxs;
  Alcotest.(check int) "compares" 1 p.Expr.compares;
  Alcotest.(check int) "data branches" 1 p.Expr.data_branches;
  Alcotest.(check int) "const branches" 0 p.Expr.const_branches;
  Alcotest.(check int) "flops counts sqrt as one op" 5 (Expr.flop_count p)

let test_const_branch () =
  let e = E.(sel (c 1. <% c 2.) (c 0.) (acc "a" [ 0 ])) in
  let p = Expr.op_profile e in
  Alcotest.(check int) "const branch" 1 p.Expr.const_branches;
  Alcotest.(check int) "no data branch" 0 p.Expr.data_branches

let test_precedence_printing () =
  let cases =
    [
      (E.((acc "a" [ 0 ] +% acc "b" [ 0 ]) *% acc "c" [ 0 ]), "(a[0] + b[0]) * c[0]");
      (E.(acc "a" [ 0 ] +% (acc "b" [ 0 ] *% acc "c" [ 0 ])), "a[0] + b[0] * c[0]");
      (E.(acc "a" [ 0 ] -% (acc "b" [ 0 ] -% acc "c" [ 0 ])), "a[0] - (b[0] - c[0])");
      (E.(neg (acc "a" [ 0 ] +% c 1.)), "-(a[0] + 1.0)");
      (E.(sel (acc "a" [ 0 ] >% c 0.) (c 1.) (c 2.)), "a[0] > 0.0 ? 1.0 : 2.0");
    ]
  in
  List.iter
    (fun (e, expected) -> Alcotest.(check string) expected expected (Expr.to_string e))
    cases

(* Random well-formed expressions for roundtrip properties. Constants are
   non-negative (a leading minus reparses as unary negation) and accesses
   always carry at least one offset (bare identifiers reparse as Var). *)
let expr_gen =
  let open QCheck.Gen in
  let field = oneofl [ "a"; "b"; "cc"; "dd" ] in
  let variable = oneofl [ "t0"; "t1"; "u" ] in
  let leaf =
    oneof
      [
        map (fun f -> Expr.Const (Float.abs f)) (float_range 0. 100.);
        map (fun v -> Expr.Var v) variable;
        map2
          (fun f offs -> Expr.Access { field = f; offsets = offs })
          field
          (list_size (int_range 1 3) (int_range (-4) 4));
      ]
  in
  let rec node depth =
    if depth = 0 then leaf
    else
      frequency
        [
          (2, leaf);
          ( 3,
            map3
              (fun op l r -> Expr.Binary (op, l, r))
              (oneofl
                 [
                   Expr.Add; Expr.Sub; Expr.Mul; Expr.Div; Expr.Lt; Expr.Le; Expr.Gt; Expr.Ge;
                   Expr.Eq; Expr.Ne; Expr.And; Expr.Or;
                 ])
              (node (depth - 1)) (node (depth - 1)) );
          (1, map (fun x -> Expr.Unary (Expr.Neg, x)) (node (depth - 1)));
          (1, map (fun x -> Expr.Unary (Expr.Not, x)) (node (depth - 1)));
          ( 1,
            map3
              (fun cond if_true if_false -> Expr.Select { cond; if_true; if_false })
              (node (depth - 1)) (node (depth - 1)) (node (depth - 1)) );
          ( 1,
            let* f =
              oneofl [ Expr.Sqrt; Expr.Abs; Expr.Exp; Expr.Pow; Expr.Min; Expr.Max; Expr.Floor ]
            in
            let* args = list_repeat (Expr.func_arity f) (node (depth - 1)) in
            return (Expr.Call (f, args)) );
        ]
  in
  node 4

let prop_print_parse_roundtrip =
  QCheck.Test.make ~count:500 ~name:"expression print/parse roundtrip"
    (QCheck.make ~print:Expr.to_string expr_gen) (fun e ->
      Expr.equal e (Fixtures.ok1 (Sf_frontend.Parser.parse_expr (Expr.to_string e))))

let prop_shift_preserves_structure =
  QCheck.Test.make ~count:200 ~name:"shifting by zero is the identity"
    (QCheck.make ~print:Expr.to_string expr_gen) (fun e ->
      Expr.equal e (Expr.shift_all_accesses ~delta:[ 0; 0; 0 ] e)
      && Expr.equal e (Expr.shift_all_accesses ~delta:[ 0 ] e))

let prop_size_positive =
  QCheck.Test.make ~count:200 ~name:"size and accesses are consistent"
    (QCheck.make ~print:Expr.to_string expr_gen) (fun e ->
      Expr.size e >= 1 && List.length (Expr.accesses e) <= Expr.size e)

let suite =
  [
    Alcotest.test_case "accesses deduplicate" `Quick test_accesses_dedup;
    Alcotest.test_case "inline lets substitutes in order" `Quick test_inline_lets;
    Alcotest.test_case "offset shifting" `Quick test_shift;
    Alcotest.test_case "operation profile" `Quick test_op_profile;
    Alcotest.test_case "constant branch classification" `Quick test_const_branch;
    Alcotest.test_case "precedence-aware printing" `Quick test_precedence_printing;
    QCheck_alcotest.to_alcotest prop_print_parse_roundtrip;
    QCheck_alcotest.to_alcotest prop_shift_preserves_structure;
    QCheck_alcotest.to_alcotest prop_size_positive;
  ]
