open Sf_ir
module Partition = Sf_mapping.Partition
module Resource = Sf_models.Resource
module Device = Sf_models.Device
module Report = Sf_codegen.Report
module E = Builder.E

let dev = Device.stratix10

(* A deliberately unbalanced chain: alternating light and heavy stages
   (the heavy ones carry wide vector bodies through many operations). *)
let lopsided_chain n =
  let b = Builder.create ~vector_width:8 ~name:"lopsided" ~shape:[ 16; 64 ] () in
  Builder.input b "f0";
  let prev = ref "f0" in
  for i = 1 to n do
    let name = Printf.sprintf "f%d" i in
    let body =
      if i mod 2 = 0 then E.(acc !prev [ 0; 0 ] +% c 1.)
      else
        (* Heavy: a long sum of neighbour products. *)
        E.sum
          (List.map
             (fun k -> E.(acc !prev [ 0; k - 2 ] *% acc !prev [ 0; 2 - k ]))
             (Sf_support.Util.range 5))
    in
    Builder.stencil b ~boundary:[ (!prev, Boundary.Constant 0.) ] name body;
    prev := name
  done;
  Builder.output b !prev;
  Builder.finish b

let worst_utilization pt =
  List.fold_left
    (fun acc usage ->
      let a, f, m, d = Resource.utilization dev usage in
      Float.max acc (Float.max (Float.max a f) (Float.max m d)))
    0. pt.Partition.per_device_usage

let test_balanced_improves_on_greedy () =
  let p = lopsided_chain 24 in
  let ceiling = 0.08 in
  match (Partition.greedy ~ceiling ~device:dev p, Partition.balanced ~ceiling ~device:dev p) with
  | Ok g, Ok b ->
      Alcotest.(check bool) "same or fewer devices" true
        (b.Partition.num_devices <= g.Partition.num_devices);
      (match Partition.validate p b with
      | Ok () -> ()
      | Error errs -> Alcotest.fail (String.concat "; " errs));
      let wg = worst_utilization g and wb = worst_utilization b in
      Alcotest.(check bool)
        (Printf.sprintf "balanced max %.4f <= greedy max %.4f" wb wg)
        true (wb <= wg +. 1e-9)
  | Error m, _ | _, Error m -> Alcotest.fail (Sf_support.Diag.to_string m)

let test_balanced_single_device () =
  let p = Fixtures.kitchen_sink () in
  match Partition.balanced ~device:dev p with
  | Ok pt -> Alcotest.(check int) "one device" 1 pt.Partition.num_devices
  | Error m -> Alcotest.fail (Sf_support.Diag.to_string m)

let test_balanced_respects_max_devices () =
  let p = lopsided_chain 24 in
  match Partition.balanced ~ceiling:0.001 ~max_devices:2 ~device:dev p with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "infeasible ceiling must be reported"

let test_balanced_simulates () =
  let p = Fixtures.chain ~shape:[ 6; 10 ] ~n:6 () in
  match Partition.balanced ~ceiling:0.02 ~device:dev p with
  | Error m -> Alcotest.fail (Sf_support.Diag.to_string m)
  | Ok pt ->
      Alcotest.(check bool) "multiple devices" true (pt.Partition.num_devices > 1);
      let config =
        Sf_sim.Engine.Config.make ~latency:Sf_analysis.Latency.cheap ()
      in
      (match
         Sf_sim.Engine.run_and_validate ~config ~placement:(Partition.placement_fn pt) p
       with
      | Ok _ -> ()
      | Error m -> Alcotest.fail (Sf_support.Diag.to_string m))

let prop_balanced_never_worse =
  let gen =
    QCheck.Gen.(
      let* n = int_range 6 20 in
      let* ceiling = oneofl [ 0.06; 0.1; 0.2 ] in
      return (lopsided_chain n, ceiling))
  in
  QCheck.Test.make ~count:25 ~name:"balanced partition is valid and never worse than greedy"
    (QCheck.make ~print:(fun (p, c) -> Printf.sprintf "%s c=%.2f" p.Program.name c) gen)
    (fun (p, ceiling) ->
      match (Partition.greedy ~ceiling ~device:dev p, Partition.balanced ~ceiling ~device:dev p) with
      | Error _, Error _ -> true
      | Error _, Ok _ -> true (* balanced can succeed where greedy packs badly *)
      | Ok _, Error _ -> false
      | Ok g, Ok b ->
          Partition.validate p b = Ok ()
          && b.Partition.num_devices <= g.Partition.num_devices
          && worst_utilization b <= worst_utilization g +. 1e-9)

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_report_contents () =
  let p = Sf_kernels.Hdiff.program ~shape:[ 8; 32; 32 ] () in
  let md = Report.markdown p in
  List.iter
    (fun fragment ->
      Alcotest.(check bool) ("report contains " ^ fragment) true (contains md fragment))
    [
      "# StencilFlow report: horizontal_diffusion";
      "## Stencil DAG";
      "## Delay buffers";
      "## Runtime model (Eq. 1)";
      "## Data movement and roofline";
      "## Resources on";
      "## Vectorization sweep";
      "<- recommended";
      "## Device mapping";
      "fits on 1 device(s)";
    ]

let suite =
  [
    Alcotest.test_case "balanced beats greedy on lopsided chains" `Quick
      test_balanced_improves_on_greedy;
    Alcotest.test_case "balanced single device" `Quick test_balanced_single_device;
    Alcotest.test_case "balanced respects max devices" `Quick test_balanced_respects_max_devices;
    Alcotest.test_case "balanced placement simulates" `Quick test_balanced_simulates;
    Alcotest.test_case "markdown report contents" `Quick test_report_contents;
    QCheck_alcotest.to_alcotest prop_balanced_never_worse;
  ]
