(* Engine parity harness: the simulator's observable behaviour — cycle
   counts, per-unit stall counts, per-channel high-water marks, byte and
   network accounting, occupancy traces, deadlock diagnoses and the
   computed outputs themselves — must be bit-identical to the seed
   engine. [Seed_parity_data.expected] holds signatures recorded from the
   original cycle-by-cycle engine; any scheduling or data-path
   optimization (ready sets, fast-forward batching, zero-allocation
   channels) has to reproduce them exactly.

   To re-record after an *intentional* semantic change:
     SF_PARITY_RECORD=1 dune exec test/main.exe -- test sim_parity
   which rewrites test/seed_parity_data.ml in the source tree. *)
module Engine = Sf_sim.Engine
module Telemetry = Sf_sim.Telemetry
module Interp = Sf_reference.Interp
module Tensor = Sf_reference.Tensor

let cheap_config = Engine.Config.make ~latency:Sf_analysis.Latency.cheap ()

(* FNV-1a over the exact float bits: any single-ulp deviation changes the
   fingerprint. *)
let fingerprint_floats h (a : float array) =
  let h = ref h in
  Array.iter
    (fun v -> h := Int64.mul (Int64.logxor !h (Int64.bits_of_float v)) 0x100000001b3L)
    a;
  !h

let fingerprint_bools h (a : bool array) =
  let h = ref h in
  Array.iter
    (fun b -> h := Int64.mul (Int64.logxor !h (if b then 3L else 5L)) 0x100000001b3L)
    a;
  !h

let fingerprint_results results =
  let h = ref 0xcbf29ce484222325L in
  List.iter
    (fun (name, (r : Interp.result)) ->
      String.iter
        (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
        name;
      h := fingerprint_floats !h r.Interp.tensor.Tensor.data;
      h := fingerprint_bools !h r.Interp.valid)
    results;
  !h

let signature outcome =
  match outcome with
  | Engine.Completed s ->
      let stalls =
        Sf_support.Util.string_concat_map ","
          (fun (n, c) -> Printf.sprintf "%s:%d" n c)
          (Telemetry.unit_stalls s.Engine.telemetry)
      in
      let hw =
        Sf_support.Util.string_concat_map ","
          (fun (n, h, c) -> Printf.sprintf "%s:%d/%d" n h c)
          (Telemetry.channel_high_water s.Engine.telemetry)
      in
      let trace =
        let h = ref 0xcbf29ce484222325L in
        List.iter
          (fun (cycle, occs) ->
            h := Int64.mul (Int64.logxor !h (Int64.of_int cycle)) 0x100000001b3L;
            List.iter
              (fun (_, occ) ->
                h := Int64.mul (Int64.logxor !h (Int64.of_int occ)) 0x100000001b3L)
              occs)
          s.Engine.telemetry.Telemetry.samples;
        Printf.sprintf "%d/%Lx" (List.length s.Engine.telemetry.Telemetry.samples) !h
      in
      Printf.sprintf "cycles=%d pred=%d read=%d written=%d net=%d stalls=[%s] hw=[%s] out=%Lx trace=%s"
        s.Engine.cycles s.Engine.predicted_cycles s.Engine.bytes_read s.Engine.bytes_written
        s.Engine.network_bytes stalls hw
        (fingerprint_results s.Engine.results)
        trace
  | Engine.Deadlocked { cycle; blocked; wait_cycle; _ } ->
      Printf.sprintf "deadlock@%d blocked=[%s] wait=[%s]" cycle
        (Sf_support.Util.string_concat_map "," (fun (n, r) -> n ^ ":" ^ r) blocked)
        (String.concat "->" wait_cycle)

(* ------------------------------------------------------------------ *)
(* The recorded scenarios. Shapes are small so the fixture stays fast,  *)
(* but together they exercise every engine feature: multicast readers,  *)
(* shrink writers, lower-dimensional prefetch, vectorization, links,    *)
(* bandwidth caps, occupancy traces, deadlock and its diagnosis.        *)
(* ------------------------------------------------------------------ *)

(* Tests normally run from _build/default/test; `dune exec` runs from the
   project root. *)
let example name =
  let candidates = [ "../examples/programs/" ^ name; "examples/programs/" ^ name ] in
  match List.find_opt Sys.file_exists candidates with
  | Some path -> Fixtures.ok (Sf_frontend.Program_json.of_file path)
  | None -> failwith ("cannot locate example program " ^ name)

let cases : (string * (unit -> Engine.outcome)) list =
  let run ?(config = cheap_config) ?placement p () = Engine.run_exn ~config ?placement p in
  let named = [
    ("laplace2d", run (Fixtures.laplace2d ()));
    ("laplace2d-w4", run (Fixtures.laplace2d ~shape:[ 8; 32 ] ~vector_width:4 ()));
    ("diamond", run (Fixtures.diamond ~shape:[ 8; 16 ] ~span:5 ()));
    ("chain3-w2", run (Fixtures.chain ~shape:[ 4; 16 ] ~n:3 ~vector_width:2 ()));
    ("kitchen-sink", run (Fixtures.kitchen_sink ()));
    ("kitchen-sink-w2", run (Fixtures.kitchen_sink ~shape:[ 3; 4; 8 ] ~vector_width:2 ()));
    ("fork", run (Fixtures.fork ()));
    ("smoothing3d", run (example "smoothing3d.json"));
    ("diamond-json", run (example "diamond.json"));
    ( "deadlock-diamond",
      run
        ~config:
          {
            cheap_config with
            Engine.Config.override_edge_buffers = [ (("a", "c"), 0) ];
            Engine.Config.channel_slack = 2;
            Engine.Config.safety = Engine.Config.safety ~deadlock_window:256 ();
          }
        (Fixtures.diamond ~shape:[ 8; 16 ] ~span:5 ()) );
    ( "multi-device-chain",
      run
        ~config:
          { cheap_config with
            Engine.Config.network = Engine.Config.network ~net_latency_cycles:16 () }
        ~placement:(function "f1" | "f2" -> 0 | _ -> 1)
        (Fixtures.chain ~shape:[ 6; 10 ] ~n:4 ()) );
    ( "net-capped-chain",
      run
        ~config:
          {
            cheap_config with
            Engine.Config.network =
              Engine.Config.network ~net_bytes_per_cycle:2. ~net_latency_cycles:4 ();
          }
        ~placement:(function "f2" -> 1 | _ -> 0)
        (Fixtures.chain ~shape:[ 8; 24 ] ~n:2 ()) );
    ( "mem-capped-laplace",
      run
        ~config:
          { cheap_config with
            Engine.Config.bandwidth = Engine.Config.bandwidth ~mem_bytes_per_cycle:4. () }
        (Fixtures.laplace2d ~shape:[ 8; 32 ] ()) );
    ( "traced-diamond",
      run
        ~config:
          { cheap_config with
            Engine.Config.tracing = Engine.Config.tracing ~trace_interval:8 () }
        (Fixtures.diamond ~shape:[ 8; 16 ] ~span:4 ()) );
    ( "max-cycles-timeout",
      run
        ~config:
          { cheap_config with
            Engine.Config.safety =
              Engine.Config.safety ~deadlock_window:4096 ~max_cycles:40 () }
        (Fixtures.chain ~shape:[ 6; 10 ] ~n:3 ()) );
  ]
  in
  let random =
    QCheck.Gen.generate ~n:14 ~rand:(Random.State.make [| 0x5eed |]) Program_gen.program_gen
    |> List.mapi (fun i p -> (Printf.sprintf "random-%02d" i, run p))
  in
  named @ random

let record path =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "(* GENERATED by `SF_PARITY_RECORD=1 dune exec test/main.exe -- test sim_parity`.\n\
    \   Signatures of the SEED engine on the scenarios in Test_sim_parity.cases;\n\
    \   the optimized engine must reproduce them bit-for-bit. Do not edit. *)\n\n\
     let expected : (string * string) list =\n  [\n";
  List.iter
    (fun (name, thunk) ->
      Buffer.add_string buf (Printf.sprintf "    (%S, %S);\n" name (signature (thunk ()))))
    cases;
  Buffer.add_string buf "  ]\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "recorded %d parity signatures to %s\n" (List.length cases) path

let test_parity () =
  match Sys.getenv_opt "SF_PARITY_RECORD" with
  | Some path ->
      let path =
        if String.contains path '/' then path
        else if Sys.file_exists "test/seed_parity_data.ml" then "test/seed_parity_data.ml"
        else "../../../test/seed_parity_data.ml"
      in
      record path
  | None ->
      if Seed_parity_data.expected = [] then
        Alcotest.fail "seed_parity_data.ml is empty - record it with SF_PARITY_RECORD=1";
      Alcotest.(check int)
        "case count matches recorded data" (List.length Seed_parity_data.expected)
        (List.length cases);
      List.iter
        (fun (name, thunk) ->
          match List.assoc_opt name Seed_parity_data.expected with
          | None -> Alcotest.failf "case %s missing from recorded seed data" name
          | Some expected ->
              Alcotest.(check string) (name ^ " matches the seed engine") expected
                (signature (thunk ())))
        cases

let suite = [ Alcotest.test_case "engine matches recorded seed behaviour" `Quick test_parity ]
