open Sf_ir
module Sdfg = Sf_sdfg.Sdfg
module Transform = Sf_sdfg.Transform
module Interp = Sf_reference.Interp
module Tensor = Sf_reference.Tensor

let check_valid sdfg =
  match Sdfg.validate sdfg with
  | Ok () -> ()
  | Error errs -> Alcotest.fail (String.concat "; " errs)

let semantically_equal p q =
  (* Same outputs on the same random inputs. *)
  let inputs = Interp.random_inputs p in
  let rp = Interp.run p ~inputs and rq = Interp.run q ~inputs in
  List.for_all
    (fun (name, (r : Interp.result)) ->
      match List.assoc_opt name rq with
      | None -> false
      | Some r' -> Tensor.max_abs_diff r.Interp.tensor r'.Interp.tensor < 1e-12)
    rp

let test_of_program_structure () =
  let p = Fixtures.diamond ~shape:[ 8; 16 ] ~span:3 () in
  let sdfg = Sdfg.of_program p in
  check_valid sdfg;
  let states, nodes, edges = Sdfg.stats sdfg in
  Alcotest.(check int) "one state" 1 states;
  Alcotest.(check bool) "nodes present" true (nodes > 4);
  Alcotest.(check bool) "edges present" true (edges > 4);
  (* The skip-edge stream a -> c carries the analysed delay buffer. *)
  match Sdfg.find_container sdfg "a__to__c" with
  | Some { Sdfg.storage = Sdfg.Stream { depth }; transient = true; _ } ->
      (* init 6 + default add latency 8 of b. *)
      Alcotest.(check int) "stream depth is the delay buffer" 14 depth
  | Some _ -> Alcotest.fail "a__to__c should be a transient stream"
  | None -> Alcotest.fail "missing stream container a__to__c"

let test_extract_roundtrip () =
  List.iter
    (fun p ->
      let sdfg = Sdfg.of_program p in
      match Sdfg.extract_program sdfg with
      | Error m -> Alcotest.fail m
      | Ok q ->
          Alcotest.(check int)
            (p.Program.name ^ ": stencil count")
            (List.length p.Program.stencils)
            (List.length q.Program.stencils);
          Alcotest.(check bool) (p.Program.name ^ ": semantics") true (semantically_equal p q))
    [
      Fixtures.laplace2d ();
      Fixtures.diamond ();
      Fixtures.kitchen_sink ();
      Fixtures.fork ();
    ]

let count_nodes pred g =
  let rec go g =
    List.fold_left
      (fun acc (_, n) ->
        let nested =
          match n with
          | Sdfg.Pipeline { body; _ } | Sdfg.Unrolled_map { body; _ } -> go body
          | Sdfg.Access _ | Sdfg.Tasklet _ | Sdfg.Stencil_node _ -> 0
        in
        acc + nested + if pred n then 1 else 0)
      0 g.Sdfg.nodes
  in
  go g

let count_in_sdfg pred (sdfg : Sdfg.t) =
  List.fold_left (fun acc st -> acc + count_nodes pred st.Sdfg.body) 0 sdfg.Sdfg.states

let test_expansion () =
  let p = Fixtures.laplace2d ~shape:[ 8; 8 ] () in
  let sdfg = Sdfg.expand_library_nodes (Sdfg.of_program p) in
  check_valid sdfg;
  Alcotest.(check int) "no library nodes remain" 0
    (count_in_sdfg (function Sdfg.Stencil_node _ -> true | _ -> false) sdfg);
  Alcotest.(check int) "one pipeline scope" 1
    (count_in_sdfg (function Sdfg.Pipeline _ -> true | _ -> false) sdfg);
  Alcotest.(check bool) "shift phase present" true
    (count_in_sdfg (function Sdfg.Unrolled_map _ -> true | _ -> false) sdfg > 0);
  (* The laplace accesses span [-I, +I]: shift register of 2I + W. *)
  match Sdfg.find_container sdfg "sr_lap_a" with
  | Some { Sdfg.extent = [ size ]; storage = Sdfg.On_chip; _ } ->
      Alcotest.(check int) "shift register size" ((2 * 8) + 1) size
  | Some _ | None -> Alcotest.fail "expected shift register container sr_lap_a"

let test_expansion_pipeline_phases () =
  let p = Fixtures.diamond ~shape:[ 8; 16 ] ~span:3 () in
  let sdfg = Sdfg.expand_library_nodes (Sdfg.of_program p) in
  check_valid sdfg;
  (* b has init phase 6 cycles (span 6 buffer). *)
  let found = ref false in
  let rec scan g =
    List.iter
      (fun (_, n) ->
        match n with
        | Sdfg.Pipeline { label; init_cycles; body; _ } ->
            if String.equal label "pipeline_b" then begin
              found := true;
              Alcotest.(check int) "init cycles" 6 init_cycles
            end;
            scan body
        | Sdfg.Unrolled_map { body; _ } -> scan body
        | Sdfg.Access _ | Sdfg.Tasklet _ | Sdfg.Stencil_node _ -> ())
      g.Sdfg.nodes
  in
  List.iter (fun st -> scan st.Sdfg.body) sdfg.Sdfg.states;
  Alcotest.(check bool) "pipeline_b found" true !found

let test_map_fission () =
  let p = Fixtures.diamond ~shape:[ 8; 16 ] ~span:2 () in
  let fissioned = Transform.map_fission (Sdfg.of_program p) in
  check_valid fissioned;
  Alcotest.(check int) "one state per stencil" 3 (List.length fissioned.Sdfg.states);
  (* Intermediates become transient off-chip arrays. *)
  (match Sdfg.find_container fissioned "a" with
  | Some { Sdfg.storage = Sdfg.Off_chip; transient = true; _ } -> ()
  | Some _ | None -> Alcotest.fail "intermediate a should be transient off-chip");
  (match Sdfg.find_container fissioned "c" with
  | Some { Sdfg.transient = false; _ } -> ()
  | Some _ | None -> Alcotest.fail "output c stays externally visible");
  match Sdfg.extract_program fissioned with
  | Error m -> Alcotest.fail m
  | Ok q -> Alcotest.(check bool) "semantics preserved" true (semantically_equal p q)

let test_state_fusion_roundtrip () =
  let p = Fixtures.kitchen_sink () in
  let refused = Transform.state_fusion (Transform.map_fission (Sdfg.of_program p)) in
  check_valid refused;
  Alcotest.(check int) "single state" 1 (List.length refused.Sdfg.states);
  match Sdfg.extract_program refused with
  | Error m -> Alcotest.fail m
  | Ok q ->
      Alcotest.(check bool) "semantics preserved" true (semantically_equal p q);
      (* Streams are back. *)
      Alcotest.(check bool) "streams rebuilt" true
        (List.exists
           (fun c -> match c.Sdfg.storage with Sdfg.Stream _ -> true | _ -> false)
           refused.Sdfg.containers)

let test_nest_dim () =
  let p2d = Fixtures.laplace2d ~shape:[ 6; 8 ] () in
  let p3d = Transform.nest_dim p2d ~extent:4 in
  Alcotest.(check (list int)) "lifted shape" [ 4; 6; 8 ] p3d.Program.shape;
  (* Inputs span the inner axes only. *)
  Alcotest.(check (list int)) "input axes" [ 1; 2 ] (Program.field_axes p3d "a");
  (* Every outer slice equals the 2D program's result. *)
  let a2d = List.assoc "a" (Interp.random_inputs p2d) in
  let r2d = (List.assoc "lap" (Interp.run p2d ~inputs:[ ("a", a2d) ])).Interp.tensor in
  let r3d =
    (List.assoc "lap" (Interp.run p3d ~inputs:[ ("a", a2d) ])).Interp.tensor
  in
  List.iter
    (fun k ->
      List.iter
        (fun j ->
          List.iter
            (fun i ->
              Alcotest.(check (float 1e-12))
                (Printf.sprintf "slice %d cell (%d,%d)" k j i)
                (Tensor.get r2d [ j; i ])
                (Tensor.get r3d [ k; j; i ]))
            (Sf_support.Util.range 8))
        (Sf_support.Util.range 6))
    (Sf_support.Util.range 4)

let test_nest_dim_rejects_3d () =
  match Transform.nest_dim (Fixtures.kitchen_sink ()) ~extent:2 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "lifting a 3D program must fail"

let test_validate_catches_corruption () =
  let p = Fixtures.laplace2d () in
  let sdfg = Sdfg.of_program p in
  let broken =
    {
      sdfg with
      Sdfg.states =
        List.map
          (fun st ->
            {
              st with
              Sdfg.body =
                {
                  st.Sdfg.body with
                  Sdfg.edges =
                    { Sdfg.src = 999; dst = 0; data = "x"; subset = "" } :: st.Sdfg.body.Sdfg.edges;
                };
            })
          sdfg.Sdfg.states;
    }
  in
  match Sdfg.validate broken with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "expected validation failure"

let suite =
  [
    Alcotest.test_case "lowering structure and stream depths" `Quick test_of_program_structure;
    Alcotest.test_case "extract inverts lowering" `Quick test_extract_roundtrip;
    Alcotest.test_case "library node expansion (fig 12)" `Quick test_expansion;
    Alcotest.test_case "pipeline scope init phases" `Quick test_expansion_pipeline_phases;
    Alcotest.test_case "map fission introduces temporaries" `Quick test_map_fission;
    Alcotest.test_case "state fusion inverts fission" `Quick test_state_fusion_roundtrip;
    Alcotest.test_case "nest dim lifts 2D to 3D" `Quick test_nest_dim;
    Alcotest.test_case "nest dim rejects 3D input" `Quick test_nest_dim_rejects_3d;
    Alcotest.test_case "validation catches dangling edges" `Quick test_validate_catches_corruption;
  ]
