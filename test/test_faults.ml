(* Deterministic fault injection and adversarial deadlock-freedom
   validation. The paper's latency-insensitivity claim (Sec. IV-B) says
   the analysed delay-buffer depths tolerate ANY timing: a seeded fault
   campaign must complete bit-identical to the unperturbed run, and the
   only way to manufacture a deadlock is to shrink a channel capacity —
   which the under-provisioning probe does, expecting an SF0701 with
   fault-attribution notes, and which the shrinker then reduces to an
   event-free minimal counterexample (Kahn networks deadlock on
   capacities, never on timing). *)
module Engine = Sf_sim.Engine
module Parallel = Sf_sim.Parallel
module Fault_plan = Sf_sim.Fault_plan
module Faults = Sf_sim.Faults
module Delay_buffer = Sf_analysis.Delay_buffer
module Interp = Sf_reference.Interp
module Diag = Sf_support.Diag

let cheap = Engine.Config.make ~latency:Sf_analysis.Latency.cheap ()

(* Deadlock detection only has to outlast the longest injected burst
   (default plan durations are <= 24 cycles), so a small window keeps
   the adversarial runs fast without risking a spurious SF0701. *)
let quick =
  { cheap with Engine.Config.safety = Engine.Config.safety ~deadlock_window:256 () }

let with_plan ?(seed = 1) config plan =
  { config with Engine.Config.faults = Engine.Config.faults ~plan ~seed () }

let fixtures =
  [
    ("laplace2d", Fixtures.laplace2d ());
    ("diamond", Fixtures.diamond ());
    ("chain", Fixtures.chain ());
    ("kitchen_sink", Fixtures.kitchen_sink ());
    ("fork", Fixtures.fork ());
  ]

(* {2 PRNG} *)

let test_rng_deterministic () =
  let a = Fault_plan.Rng.make 42 and b = Fault_plan.Rng.make 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same seed, same stream" (Fault_plan.Rng.bits64 a)
      (Fault_plan.Rng.bits64 b)
  done;
  let c = Fault_plan.Rng.make 43 in
  Alcotest.(check bool) "different seed diverges" true
    (Fault_plan.Rng.bits64 a <> Fault_plan.Rng.bits64 c)

let test_rng_split () =
  let root = Fault_plan.Rng.make 7 in
  let a = Fault_plan.Rng.split root "link-stall/0" in
  let a' = Fault_plan.Rng.split root "link-stall/0" in
  let b = Fault_plan.Rng.split root "link-stall/1" in
  let va = Fault_plan.Rng.bits64 a and va' = Fault_plan.Rng.bits64 a' in
  Alcotest.(check int64) "split does not consume the parent" va va';
  Alcotest.(check bool) "sibling splits are independent" true
    (va <> Fault_plan.Rng.bits64 b)

let test_rng_int_bounds () =
  let rng = Fault_plan.Rng.make 5 in
  for _ = 1 to 1000 do
    let v = Fault_plan.Rng.int rng 7 in
    if v < 0 || v >= 7 then Alcotest.failf "Rng.int out of bounds: %d" v
  done

(* {2 Plan syntax} *)

let test_plan_roundtrip () =
  let check plan =
    let s = Fault_plan.to_string plan in
    match Fault_plan.of_string s with
    | Error m -> Alcotest.failf "round-trip of %S failed: %s" s m
    | Ok plan' -> Alcotest.(check string) "canonical form is a fixpoint" s
                    (Fault_plan.to_string plan')
  in
  check Fault_plan.default;
  check Fault_plan.none;
  check
    (Fault_plan.plan
       ~bursts:[ Fault_plan.Burst.make ~target:"a" ~gap:50 ~duration:4 ~count:2 Fault_plan.Link_stall ]
       ~events:
         [
           {
             Fault_plan.Event.kind = Fault_plan.Unit_hiccup;
             target = "b";
             start = 17;
             duration = 3;
             magnitude = 1;
           };
         ]
       ~depth_overrides:[ (("a", "c"), 9) ]
       ())

let test_plan_parse_errors () =
  (match Fault_plan.of_string "warp-core-breach:gap=3" with
  | Ok _ -> Alcotest.fail "unknown kind accepted"
  | Error _ -> ());
  match Fault_plan.of_string "depth:nonsense" with
  | Ok _ -> Alcotest.fail "malformed depth override accepted"
  | Error _ -> ()

(* {2 Injection determinism} *)

let test_injection_deterministic () =
  let p = Fixtures.diamond () in
  let inputs = Interp.random_inputs p in
  let run () =
    match Engine.run ~config:(with_plan ~seed:3 quick Fault_plan.default) ~inputs p with
    | Error d -> Alcotest.failf "injected run failed: %s" (Diag.to_string d)
    | Ok stats -> stats
  in
  let a = run () and b = run () in
  Alcotest.(check int) "same cycles" a.Engine.cycles b.Engine.cycles;
  Alcotest.(check int) "same injected events" a.Engine.faults.Fault_plan.injected_events
    b.Engine.faults.Fault_plan.injected_events;
  Alcotest.(check int) "same injected stall cycles"
    a.Engine.faults.Fault_plan.injected_stall_cycles
    b.Engine.faults.Fault_plan.injected_stall_cycles;
  Alcotest.(check bool) "same event log" true
    (a.Engine.faults.Fault_plan.log = b.Engine.faults.Fault_plan.log);
  Alcotest.(check bool) "faults were actually injected" true
    (a.Engine.faults.Fault_plan.injected_events > 0)

let test_seed_changes_timeline () =
  let p = Fixtures.diamond () in
  let inputs = Interp.random_inputs p in
  let log seed =
    match Engine.run ~config:(with_plan ~seed quick Fault_plan.default) ~inputs p with
    | Error d -> Alcotest.failf "injected run failed: %s" (Diag.to_string d)
    | Ok stats -> stats.Engine.faults.Fault_plan.log
  in
  Alcotest.(check bool) "different seeds, different timelines" true (log 1 <> log 2)

(* {2 Campaigns: the latency-insensitivity claim} *)

let test_campaign_bit_identical () =
  List.iter
    (fun (name, p) ->
      match Faults.campaign ~config:quick ~schedules:25 p with
      | Error d -> Alcotest.failf "%s: baseline failed: %s" name (Diag.to_string d)
      | Ok report ->
          List.iter
            (fun (r, d) ->
              Alcotest.failf "%s: seed %d FAILED: %s" name r.Faults.seed (Diag.to_string d))
            (Faults.failures report);
          Alcotest.(check int) (name ^ ": all schedules ran") 25
            (List.length report.Faults.runs);
          (* The perturbations must be real, not vacuous. (Per-seed would
             be too strong: a run shorter than the drawn first gap
             legitimately injects nothing.) *)
          let injected =
            List.fold_left
              (fun acc r -> acc + r.Faults.faults.Fault_plan.injected_events)
              0 report.Faults.runs
          in
          Alcotest.(check bool) (name ^ ": campaign injected faults") true (injected > 0))
    fixtures

let test_campaign_slows_runs () =
  let p = Fixtures.diamond () in
  match Faults.campaign ~config:quick ~schedules:5 p with
  | Error d -> Alcotest.failf "baseline failed: %s" (Diag.to_string d)
  | Ok report ->
      List.iter
        (fun r ->
          match r.Faults.outcome with
          | Faults.Failed d -> Alcotest.failf "seed %d: %s" r.Faults.seed (Diag.to_string d)
          | Faults.Identical cycles ->
              Alcotest.(check bool)
                (Printf.sprintf "seed %d: stalls cost cycles" r.Faults.seed)
                true
                (cycles > report.Faults.baseline_cycles))
        report.Faults.runs

(* {2 Under-provisioning: the adversarial converse} *)

let diamond_probe =
  lazy
    (let p = Fixtures.diamond () in
     let analysis = Delay_buffer.analyze p in
     Faults.probe_tightest ~config:quick ~analysis p)

let test_probe_finds_tight_capacity () =
  match Lazy.force diamond_probe with
  | None -> Alcotest.fail "diamond has no tight edge"
  | Some probe ->
      let src, dst = probe.Faults.edge in
      Alcotest.(check string) "tightest edge source" "a" src;
      Alcotest.(check string) "tightest edge destination" "c" dst;
      (match probe.Faults.tight_capacity with
      | None -> Alcotest.fail "skip edge a->c must be load-bearing"
      | Some tight ->
          Alcotest.(check bool) "deadlocks strictly below analysed provisioning" true
            (tight < probe.Faults.analysed_depth + quick.Engine.Config.channel_slack);
          (* b reads a at +/-span (span 3): b consumes span-and-a-bit
             words of a before its first emit, so a->c deadlocks once it
             cannot hold that prefix. Pinned so a provisioning regression
             moves a number, not just a boolean. *)
          Alcotest.(check int) "pinned tight capacity" 6 tight)

let test_probe_diag_attributes_faults () =
  match Lazy.force diamond_probe with
  | None -> Alcotest.fail "diamond has no tight edge"
  | Some probe -> (
      match probe.Faults.probe_diag with
      | None -> Alcotest.fail "probe produced no diagnostic"
      | Some d ->
          Alcotest.(check string) "deadlock code" Diag.Code.sim_deadlock d.Diag.code;
          Alcotest.(check bool) "totals note present" true
            (List.exists (String.starts_with ~prefix:"injected ") d.Diag.notes);
          Alcotest.(check bool) "fault-attribution note present" true
            (List.exists (String.starts_with ~prefix:"fault-attribution:") d.Diag.notes))

let test_underprovision_fails_every_seed () =
  (* Kahn determinacy: a capacity-caused deadlock is schedule-independent,
     so an under-provisioned campaign fails on EVERY seed, not just one. *)
  match Lazy.force diamond_probe with
  | None | Some { Faults.tight_capacity = None; _ } -> Alcotest.fail "no tight capacity"
  | Some { Faults.edge; tight_capacity = Some tight; _ } ->
      let p = Fixtures.diamond () in
      let overrides =
        Faults.underprovision ~channel_slack:quick.Engine.Config.channel_slack
          ~capacity:tight edge
      in
      let plan = { Fault_plan.default with Fault_plan.depth_overrides = overrides } in
      (match Faults.campaign ~config:quick ~plan ~schedules:5 p with
      | Error d -> Alcotest.failf "baseline must stay clean: %s" (Diag.to_string d)
      | Ok report ->
          Alcotest.(check int) "every seed deadlocks" 5
            (List.length (Faults.failures report));
          List.iter
            (fun (_, d) ->
              Alcotest.(check string) "deadlock code" Diag.Code.sim_deadlock d.Diag.code)
            (Faults.failures report))

(* {2 Shrinking} *)

let test_shrink_to_empty_events () =
  match Lazy.force diamond_probe with
  | None | Some { Faults.tight_capacity = None; _ } -> Alcotest.fail "no tight capacity"
  | Some { Faults.edge = (src, dst) as edge; tight_capacity = Some tight; _ } ->
      let p = Fixtures.diamond () in
      let inputs = Interp.random_inputs p in
      let overrides =
        Faults.underprovision ~channel_slack:quick.Engine.Config.channel_slack
          ~capacity:tight edge
      in
      let plan = { Fault_plan.default with Fault_plan.depth_overrides = overrides } in
      let deadlocks pl =
        match Engine.run ~config:(with_plan quick pl) ~inputs p with
        | Ok _ -> false
        | Error d -> String.equal d.Diag.code Diag.Code.sim_deadlock
      in
      let witness =
        match Engine.run_exn ~config:(with_plan quick plan) ~inputs p with
        | Engine.Completed _ -> Alcotest.fail "under-provisioned run completed"
        | Engine.Deadlocked { faults; _ } -> faults
      in
      Alcotest.(check bool) "witness run injected events" true
        (witness.Fault_plan.log <> []);
      (match Faults.shrink ~fails:deadlocks plan ~witness with
      | None -> Alcotest.fail "scripted replay of the witness did not fail"
      | Some minimal ->
          (* The minimal counterexample is the depth override ALONE:
             no timing event is needed, because Kahn-network deadlocks
             depend only on capacities. Pinned as a fixture string. *)
          Alcotest.(check int) "no events survive shrinking" 0
            (List.length minimal.Fault_plan.events);
          Alcotest.(check string) "pinned minimal counterexample"
            (Printf.sprintf "depth:%s->%s=%d" src dst
               (tight - quick.Engine.Config.channel_slack))
            (Fault_plan.to_string minimal))

(* {2 Satellites: timeout budget, parallel degrade} *)

let test_timeout_budget_echoed () =
  let p = Fixtures.diamond () in
  let config =
    { quick with Engine.Config.safety = Engine.Config.safety ~max_cycles:50 () }
  in
  match Engine.run ~config p with
  | Ok stats -> Alcotest.failf "expected a timeout, completed in %d cycles" stats.Engine.cycles
  | Error d ->
      Alcotest.(check string) "timeout code" Diag.Code.sim_timeout d.Diag.code;
      Alcotest.(check bool) "budget echoed in a note" true
        (List.exists (String.starts_with ~prefix:"cycle budget: 50") d.Diag.notes)

let test_parallel_degrades_under_injection () =
  let p = Fixtures.chain ~shape:[ 6; 10 ] ~n:4 () in
  let placement = function "f1" | "f2" -> 0 | _ -> 1 in
  let par config =
    {
      config with
      Engine.Config.parallelism = Engine.Config.parallelism ~mode:`Domains_per_device ();
      Engine.Config.network = Engine.Config.network ~net_latency_cycles:16 ();
    }
  in
  (match Parallel.decide ~config:(par quick) ~placement p with
  | `Parallel _ -> ()
  | `Degrade r | `Reject { Diag.message = r; _ } ->
      Alcotest.failf "control config should run parallel: %s" r);
  match Parallel.decide ~config:(par (with_plan quick Fault_plan.default)) ~placement p with
  | `Degrade reason ->
      Alcotest.(check bool) "reason mentions fault injection" true
        (String.starts_with ~prefix:"fault injection" reason)
  | `Parallel _ -> Alcotest.fail "injected run must degrade to the sequential engine"
  | `Reject d -> Alcotest.failf "rejected: %s" (Diag.to_string d)

(* {2 Random programs: analysed depths survive, minus-one does not} *)

let prop_analysed_depths_survive_faults =
  QCheck.Test.make ~count:20
    ~name:"random programs: analysed depths survive seeded fault schedules"
    Program_gen.arbitrary_program (fun p ->
      match Faults.campaign ~config:quick ~schedules:3 p with
      | Error d -> QCheck.Test.fail_reportf "baseline failed: %s" (Diag.to_string d)
      | Ok report -> Faults.passed report)

let prop_tight_capacity_deadlocks =
  QCheck.Test.make ~count:12
    ~name:"random programs: under-provisioned tightest edge deadlocks with attribution"
    Program_gen.arbitrary_program (fun p ->
      let analysis = Delay_buffer.analyze p in
      match Faults.probe_tightest ~config:quick ~analysis p with
      | None -> true (* no positive-depth edge to attack *)
      | Some { Faults.tight_capacity = None; _ } -> true (* not load-bearing *)
      | Some { Faults.probe_diag = None; _ } ->
          QCheck.Test.fail_report "tight capacity found but probe run completed"
      | Some { Faults.probe_diag = Some d; _ } ->
          String.equal d.Diag.code Diag.Code.sim_deadlock
          && List.exists (String.starts_with ~prefix:"injected ") d.Diag.notes)

let suite =
  [
    Alcotest.test_case "rng: deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "rng: keyed split" `Quick test_rng_split;
    Alcotest.test_case "rng: int bounds" `Quick test_rng_int_bounds;
    Alcotest.test_case "plan: round-trip" `Quick test_plan_roundtrip;
    Alcotest.test_case "plan: parse errors" `Quick test_plan_parse_errors;
    Alcotest.test_case "injection: deterministic from (seed, plan)" `Quick
      test_injection_deterministic;
    Alcotest.test_case "injection: seed changes the timeline" `Quick
      test_seed_changes_timeline;
    Alcotest.test_case "campaign: 25 schedules bit-identical on all fixtures" `Slow
      test_campaign_bit_identical;
    Alcotest.test_case "campaign: injected stalls cost cycles" `Quick
      test_campaign_slows_runs;
    Alcotest.test_case "probe: finds the tight capacity of the skip edge" `Quick
      test_probe_finds_tight_capacity;
    Alcotest.test_case "probe: SF0701 carries fault-attribution notes" `Quick
      test_probe_diag_attributes_faults;
    Alcotest.test_case "under-provision: every seed deadlocks (Kahn)" `Quick
      test_underprovision_fails_every_seed;
    Alcotest.test_case "shrink: converges to the event-free counterexample" `Quick
      test_shrink_to_empty_events;
    Alcotest.test_case "timeout: --max-cycles budget echoed in the diag" `Quick
      test_timeout_budget_echoed;
    Alcotest.test_case "parallel: injection degrades to sequential" `Quick
      test_parallel_degrades_under_injection;
    QCheck_alcotest.to_alcotest prop_analysed_depths_survive_faults;
    QCheck_alcotest.to_alcotest prop_tight_capacity_deadlocks;
  ]
