let () =
  Alcotest.run "stencilflow"
    [
      ("support", Test_support.suite);
      ("diag", Test_diag.suite);
      ("toolchain", Test_toolchain.suite);
      ("json", Test_json.suite);
      ("dgraph", Test_dgraph.suite);
      ("expr", Test_expr.suite);
      ("parser", Test_parser.suite);
      ("program", Test_program.suite);
      ("analysis", Test_analysis.suite);
      ("reference", Test_reference.suite);
      ("sim_primitives", Test_sim_primitives.suite);
      ("memory_units", Test_memory_units.suite);
      ("sim", Test_sim.suite);
      ("sim_parity", Test_sim_parity.suite);
      ("sdfg", Test_sdfg.suite);
      ("fusion", Test_fusion.suite);
      ("models", Test_models.suite);
      ("mapping", Test_mapping.suite);
      ("codegen", Test_codegen.suite);
      ("codegen_exec", Test_codegen_exec.suite);
      ("kernels", Test_kernels.suite);
      ("opt", Test_opt.suite);
      ("tiling", Test_tiling.suite);
      ("autotune", Test_autotune.suite);
      ("examples", Test_examples.suite);
      ("timeloop", Test_timeloop.suite);
      ("swe", Test_swe.suite);
      ("partition_balanced", Test_partition_balanced.suite);
      ("random_programs", Test_random_programs.suite);
      ("pipeline", Test_pipeline.suite);
      ("compile", Test_compile.suite);
      ("wave", Test_wave.suite);
      ("telemetry", Test_telemetry.suite);
      ("parallel", Test_parallel.suite);
    ]
