open Sf_ir
module Pipeline = Sf_sdfg.Pipeline
module Engine = Sf_sim.Engine

let run ?verify ?max_probe_cells passes p =
  Fixtures.ok (Pipeline.run ?verify ?max_probe_cells passes p)

let test_default_pipeline_on_hdiff () =
  let p = Sf_kernels.Hdiff.program ~shape:[ 6; 16; 16 ] () in
  let optimized, entries = run Pipeline.default_pipeline p in
  Alcotest.(check int) "two entries" 2 (List.length entries);
  let fusion_entry = List.hd entries in
  Alcotest.(check int) "fusion collapses 18" 18 fusion_entry.Pipeline.stencils_before;
  Alcotest.(check int) "to 4" 4 fusion_entry.Pipeline.stencils_after;
  Alcotest.(check (option bool)) "fusion verified" (Some true) fusion_entry.Pipeline.verified;
  let cse_entry = List.nth entries 1 in
  Alcotest.(check bool) "cse reduces flops" true
    (cse_entry.Pipeline.flops_after < cse_entry.Pipeline.flops_before);
  Alcotest.(check (option bool)) "cse verified" (Some true) cse_entry.Pipeline.verified;
  (* The optimized program still streams correctly. *)
  match
    Engine.run_and_validate
      ~config:(Engine.Config.make ~latency:Sf_analysis.Latency.cheap ())
      optimized
  with
  | Ok _ -> ()
  | Error m -> Alcotest.fail (Sf_support.Diag.to_string m)

let test_vectorize_pass () =
  let p = Fixtures.chain ~shape:[ 8; 32 ] ~n:2 () in
  let p', entries = run [ Pipeline.vectorize 4 ] p in
  Alcotest.(check int) "width set" 4 p'.Program.vector_width;
  Alcotest.(check (option bool)) "verified" (Some true) (List.hd entries).Pipeline.verified

let test_nest_pass_skips_verification () =
  let p = Fixtures.laplace2d ~shape:[ 6; 8 ] () in
  let p', entries = run [ Pipeline.nest ~extent:3 ] p in
  Alcotest.(check int) "lifted" 3 (Program.rank p');
  Alcotest.(check (option bool)) "verification skipped" None (List.hd entries).Pipeline.verified

let test_broken_pass_detected () =
  (* A "transformation" that silently changes arithmetic is caught by the
     probe comparison. *)
  let broken =
    Pipeline.custom ~name:"off-by-epsilon" (fun p ->
        {
          p with
          Program.stencils =
            List.map
              (fun (s : Stencil.t) ->
                {
                  s with
                  Stencil.body =
                    {
                      s.Stencil.body with
                      Expr.result =
                        Expr.Binary (Expr.Add, s.Stencil.body.Expr.result, Expr.Const 0.125);
                    };
                })
              p.Program.stencils;
        })
  in
  let p = Fixtures.laplace2d ~shape:[ 8; 8 ] () in
  match Pipeline.run [ broken ] p with
  | Error (d :: _) ->
      Alcotest.(check string) "verification code" Sf_support.Diag.Code.pass_verification
        d.Sf_support.Diag.code
  | Error [] -> Alcotest.fail "failure without diagnostics"
  | Ok _ -> Alcotest.fail "broken pass must be detected"

let test_verification_disabled () =
  (* With verify:false even a broken pass goes through, but is recorded
     as unverified. *)
  let broken = Pipeline.custom ~name:"noop" Fun.id in
  let p = Fixtures.laplace2d ~shape:[ 8; 8 ] () in
  let _, entries = run ~verify:false [ broken ] p in
  Alcotest.(check (option bool)) "unverified" None (List.hd entries).Pipeline.verified

let test_large_domains_skip_probes () =
  let p = Sf_kernels.Hdiff.program () in
  let _, entries = run ~max_probe_cells:1000 Pipeline.default_pipeline p in
  List.iter
    (fun e -> Alcotest.(check (option bool)) "skipped" None e.Pipeline.verified)
    entries

let suite =
  [
    Alcotest.test_case "default pipeline on hdiff" `Quick test_default_pipeline_on_hdiff;
    Alcotest.test_case "vectorize pass" `Quick test_vectorize_pass;
    Alcotest.test_case "shape-changing passes skip verification" `Quick
      test_nest_pass_skips_verification;
    Alcotest.test_case "broken passes are detected" `Quick test_broken_pass_detected;
    Alcotest.test_case "verification can be disabled" `Quick test_verification_disabled;
    Alcotest.test_case "large domains skip probes" `Quick test_large_domains_skip_probes;
  ]
