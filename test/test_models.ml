open Sf_models
module Iterative = Sf_kernels.Iterative
module Hdiff = Sf_kernels.Hdiff
module Op_count = Sf_analysis.Op_count

let dev = Device.stratix10

let test_device_constants () =
  Alcotest.(check (float 1e-6)) "bytes per cycle" 256. (Device.bytes_per_cycle dev);
  Alcotest.(check (float 1e-4)) "link bytes per cycle" (2. *. 5e9 /. 300e6)
    (Device.link_bytes_per_cycle dev);
  Alcotest.(check bool) "scalar cap is 47% of peak" true
    (Sf_support.Util.float_close ~rel:0.01 (dev.Device.scalar_bw_cap /. dev.Device.peak_bandwidth) 0.474)

let test_resource_scaling () =
  let p1 = Iterative.chain ~shape:[ 64; 64 ] Iterative.Jacobi2d ~length:1 in
  let p4 = Sf_analysis.Vectorize.apply p1 4 in
  let s1 = List.hd p1.Sf_ir.Program.stencils in
  let u1 = Resource.of_stencil p1 s1 and u4 = Resource.of_stencil p4 s1 in
  Alcotest.(check int) "DSPs scale with W" (4 * u1.Resource.dsp) u4.Resource.dsp;
  Alcotest.(check bool) "ALMs grow with W" true (u4.Resource.alm > u1.Resource.alm);
  Alcotest.(check bool) "single stage fits easily" true (Resource.fits dev u1)

let test_dtype_resource_scaling () =
  (* Double precision costs ~4x the DSPs and ~2x the datapath logic. *)
  let p32 = Iterative.chain ~shape:[ 64; 64 ] Iterative.Jacobi2d ~length:1 in
  let p64 = { p32 with Sf_ir.Program.dtype = Sf_ir.Dtype.F64 } in
  let s = List.hd p32.Sf_ir.Program.stencils in
  let u32 = Resource.of_stencil p32 s and u64 = Resource.of_stencil p64 s in
  Alcotest.(check int) "4x DSPs" (4 * u32.Resource.dsp) u64.Resource.dsp;
  Alcotest.(check bool) "more ALMs" true (u64.Resource.alm > u32.Resource.alm);
  (* Buffer bytes double too (8 B elements). *)
  Alcotest.(check bool) "more M20Ks" true (u64.Resource.m20k >= u32.Resource.m20k)

let test_max_chain_length () =
  let p = Iterative.chain ~shape:[ 1024; 64; 64 ] Iterative.Jacobi3d ~length:1 in
  let per_stage = Resource.of_stencil p (List.hd p.Sf_ir.Program.stencils) in
  let n = Resource.max_chain_length dev ~per_stage ~fixed:Resource.zero in
  (* Table I's 265 GOp/s at ~300 MHz implies on the order of 100+ chained
     Jacobi 3D stages on one device. *)
  Alcotest.(check bool) (Printf.sprintf "chain length %d in [60, 400]" n) true (n >= 60 && n <= 400);
  (* Vectorizing 8x shrinks the chain by roughly 8x (DSP-bound). *)
  let p8 = Sf_analysis.Vectorize.apply p 8 in
  let per_stage8 = Resource.of_stencil p8 (List.hd p8.Sf_ir.Program.stencils) in
  let n8 = Resource.max_chain_length dev ~per_stage:per_stage8 ~fixed:Resource.zero in
  Alcotest.(check bool)
    (Printf.sprintf "W=8 chain %d shrinks vs %d" n8 n)
    true
    (float_of_int n /. float_of_int n8 > 2. && float_of_int n /. float_of_int n8 < 14.)

let test_program_usage_includes_delay_buffers () =
  let p = Fixtures.diamond ~shape:[ 8; 512 ] ~span:4 () in
  let units_only =
    List.fold_left
      (fun acc s -> Resource.add acc (Resource.of_stencil p s))
      Resource.zero p.Sf_ir.Program.stencils
  in
  let whole = Resource.of_program p in
  Alcotest.(check bool) "program m20k exceeds unit m20k" true
    (whole.Resource.m20k > units_only.Resource.m20k)

let test_memory_model_ramp_and_caps () =
  (* Fig. 16: linear ramp, scalar saturation at 36.4 GB/s, vectorized at
     58.3 GB/s, 0.94x droop near saturation. *)
  let eff n vectorized =
    Memory_model.effective_bandwidth dev ~operands_per_cycle:n ~element_bytes:4 ~vectorized
  in
  Alcotest.(check (float 1.)) "small requests served fully" (4. *. 4. *. 300e6) (eff 4 false);
  Alcotest.(check (float 1e6)) "scalar cap" 36.4e9 (eff 48 false);
  Alcotest.(check (float 1e6)) "vector cap" 58.3e9 (eff 64 true);
  Alcotest.(check bool) "monotone" true (eff 8 false <= eff 16 false);
  (* 12 vectorized access points x 4 lanes = 48 operands/cycle: measured
     0.94x droop. *)
  let requested =
    Memory_model.requested_bandwidth dev ~operands_per_cycle:48 ~element_bytes:4
  in
  let e = eff 48 true /. requested in
  Alcotest.(check bool) (Printf.sprintf "droop %.3f in [0.9, 1.0)" e) true (e >= 0.9 && e < 1.0)

let test_loadstore_table2 () =
  (* Table II: modelled runtimes on the 128x128x80 domain. *)
  let p = Hdiff.program () in
  let ai = Op_count.ai_ops_per_byte p in
  let flops = Op_count.total_flops p in
  let check_arch arch expected_us tolerance =
    let us = Loadstore.runtime arch ~ai_ops_per_byte:ai ~total_flops:flops *. 1e6 in
    Alcotest.(check bool)
      (Printf.sprintf "%s runtime %.0f us vs paper %.0f us" arch.Loadstore.name us expected_us)
      true
      (Float.abs (us -. expected_us) /. expected_us < tolerance)
  in
  check_arch Loadstore.xeon_12c 5270. 0.15;
  check_arch Loadstore.p100 810. 0.15;
  check_arch Loadstore.v100 201. 0.15;
  (* Ordering: V100 > P100 > Xeon. *)
  let perf a = Loadstore.performance a ~ai_ops_per_byte:ai in
  Alcotest.(check bool) "v100 fastest" true
    (perf Loadstore.v100 > perf Loadstore.p100 && perf Loadstore.p100 > perf Loadstore.xeon_12c)

let test_silicon_efficiency () =
  (* Sec. IX-C: 849 GOp/s on 815 mm2 = 1.04 GOp/s/mm2 for the V100. *)
  Alcotest.(check (float 0.01)) "v100" 1.04
    (Silicon.efficiency ~performance_ops_per_s:849e9 ~die_area_mm2:815.);
  Alcotest.(check (float 0.01)) "p100" 0.34
    (Silicon.efficiency ~performance_ops_per_s:210e9 ~die_area_mm2:610.)

let test_literature_entries () =
  Alcotest.(check int) "six comparison rows" 6 (List.length Literature.all);
  Alcotest.(check (float 0.)) "zohouri 2d" 913. Literature.zohouri_diffusion2d.Literature.performance_gop_s

let test_hdiff_matches_paper_profile () =
  let p = Hdiff.program () in
  let c = Op_count.of_program p in
  let profile = c.Op_count.profile in
  Alcotest.(check int) "2 sqrt" 2 profile.Sf_ir.Expr.sqrts;
  Alcotest.(check int) "2 min" 2 profile.Sf_ir.Expr.mins;
  Alcotest.(check int) "2 max" 2 profile.Sf_ir.Expr.maxs;
  Alcotest.(check int) "20 data-dependent branches" 20 profile.Sf_ir.Expr.data_branches;
  Alcotest.(check int) "130 flops per cell (87+41+2 in the paper)" 130 c.Op_count.flops_per_cell;
  (* adds/muls land near the paper's 87/41 split. *)
  Alcotest.(check bool) "adds close to 87" true (abs (profile.Sf_ir.Expr.adds - 87) <= 10);
  Alcotest.(check bool) "muls close to 41" true (abs (profile.Sf_ir.Expr.muls - 41) <= 10);
  (* Reads 5*IJK + 5*J, writes 4*IJK (Sec. IX-A). *)
  let cells = Sf_ir.Program.cells p in
  Alcotest.(check int) "reads" ((5 * cells) + (5 * 128)) c.Op_count.read_elements;
  Alcotest.(check int) "writes" (4 * cells) c.Op_count.written_elements;
  (* Eq. 2: AI within 1% of 130/9 ops/operand. *)
  let ai = Op_count.ai_ops_per_operand p in
  Alcotest.(check bool)
    (Printf.sprintf "AI %.4f ~ %.4f" ai (130. /. 9.))
    true
    (Float.abs (ai -. (130. /. 9.)) /. (130. /. 9.) < 0.01);
  (* ~9 streaming operands per cycle at W=1 (Sec. IX-B). *)
  Alcotest.(check int) "9 operands per cycle" 9 (Op_count.streaming_operands_per_cycle p)

let test_hdiff_roofline () =
  (* Eq. 3: 210.5 GOp/s at 58.3 GB/s; Eq. 4: 254 GB/s to saturate
     917 GOp/s of compute. *)
  let p = Hdiff.program () in
  let ai = Op_count.ai_ops_per_byte p in
  let roof = Sf_analysis.Roofline.attainable_ops_per_s ~ai_ops_per_byte:ai
      ~bandwidth_bytes_per_s:dev.Device.vector_bw_cap
  in
  Alcotest.(check bool)
    (Printf.sprintf "roof %.1f GOp/s ~ 210.5" (roof /. 1e9))
    true
    (Float.abs ((roof /. 1e9) -. 210.5) < 5.);
  let needed =
    Sf_analysis.Roofline.bandwidth_to_saturate ~compute_ops_per_s:917.1e9 ~ai_ops_per_byte:ai
  in
  Alcotest.(check bool)
    (Printf.sprintf "needed %.1f GB/s ~ 254" (needed /. 1e9))
    true
    (Float.abs ((needed /. 1e9) -. 254.) < 8.)

let suite =
  [
    Alcotest.test_case "device constants" `Quick test_device_constants;
    Alcotest.test_case "resource estimates scale with W" `Quick test_resource_scaling;
    Alcotest.test_case "dtype-aware resource scaling" `Quick test_dtype_resource_scaling;
    Alcotest.test_case "chain length solver (table 1 regime)" `Quick test_max_chain_length;
    Alcotest.test_case "delay buffers cost M20Ks" `Quick test_program_usage_includes_delay_buffers;
    Alcotest.test_case "memory model reproduces fig 16" `Quick test_memory_model_ramp_and_caps;
    Alcotest.test_case "load/store baselines reproduce table 2" `Quick test_loadstore_table2;
    Alcotest.test_case "silicon efficiency (sec 9C)" `Quick test_silicon_efficiency;
    Alcotest.test_case "literature comparison rows" `Quick test_literature_entries;
    Alcotest.test_case "hdiff matches the paper's profile (sec 9A)" `Quick
      test_hdiff_matches_paper_profile;
    Alcotest.test_case "hdiff roofline equations" `Quick test_hdiff_roofline;
  ]
