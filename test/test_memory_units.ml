module Reader = Sf_sim.Memory_unit.Reader
module Writer = Sf_sim.Memory_unit.Writer
module Channel = Sf_sim.Channel
module Controller = Sf_sim.Controller
module Word = Sf_sim.Word
module Tensor = Sf_reference.Tensor
module Interp = Sf_reference.Interp

let word ?(valid = true) v =
  let w = Word.create 1 in
  w.Word.values.(0) <- v;
  w.Word.valid.(0) <- valid;
  w

let test_reader_multicast_order () =
  let tensor = Tensor.of_array [ 4 ] [| 1.; 2.; 3.; 4. |] in
  let c1 = Channel.create ~name:"c1" ~capacity:8 in
  let c2 = Channel.create ~name:"c2" ~capacity:8 in
  let r =
    Reader.create ~name:"r" ~tensor ~vector_width:1 ~element_bytes:4
      ~controller:(Controller.unlimited ()) ~outputs:[ c1; c2 ] ()
  in
  let now = ref 0 in
  while Reader.cycle r ~now:!now do
    incr now
  done;
  Alcotest.(check bool) "done" true (Reader.is_done r);
  Alcotest.(check int) "all words on both channels" 4 (Channel.occupancy c1);
  List.iter
    (fun c ->
      List.iter
        (fun expected -> Alcotest.(check (float 0.)) "order" expected (Channel.pop c).Word.values.(0))
        [ 1.; 2.; 3.; 4. ])
    [ c1; c2 ]

let test_reader_respects_backpressure () =
  let tensor = Tensor.of_array [ 4 ] [| 1.; 2.; 3.; 4. |] in
  let c1 = Channel.create ~name:"c1" ~capacity:1 in
  let c2 = Channel.create ~name:"c2" ~capacity:8 in
  let r =
    Reader.create ~name:"r" ~tensor ~vector_width:1 ~element_bytes:4
      ~controller:(Controller.unlimited ()) ~outputs:[ c1; c2 ] ()
  in
  Alcotest.(check bool) "first word moves" true (Reader.cycle r ~now:0);
  (* c1 now full: nothing moves (multicast is all-or-nothing). *)
  Alcotest.(check bool) "blocked by the slow consumer" false (Reader.cycle r ~now:1);
  Alcotest.(check int) "fast consumer got exactly one" 1 (Channel.occupancy c2);
  ignore (Channel.pop c1);
  Alcotest.(check bool) "resumes after drain" true (Reader.cycle r ~now:2)

let test_reader_respects_bandwidth () =
  let tensor = Tensor.of_array [ 4 ] [| 1.; 2.; 3.; 4. |] in
  let c = Channel.create ~name:"c" ~capacity:8 in
  let ctrl = Controller.create ~bytes_per_cycle:4. in
  let r =
    Reader.create ~name:"r" ~tensor ~vector_width:1 ~element_bytes:8 ~controller:ctrl
      ~outputs:[ c ] ()
  in
  (* 8-byte elements at 4 B/cycle: one word every other cycle. *)
  let moved = ref 0 in
  for now = 1 to 8 do
    Controller.begin_cycle ctrl;
    if Reader.cycle r ~now then incr moved
  done;
  Alcotest.(check int) "half rate" 4 !moved

let test_writer_drops_invalid_lanes () =
  let c = Channel.create ~name:"c" ~capacity:8 in
  let w =
    Writer.create ~name:"w" ~shape:[ 4 ] ~vector_width:1 ~element_bytes:4
      ~controller:(Controller.unlimited ()) ~input:c ()
  in
  Channel.push c (word 1.);
  Channel.push c (word ~valid:false 2.);
  Channel.push c (word 3.);
  Channel.push c (word 4.);
  let now = ref 0 in
  while Writer.cycle w ~now:!now do
    incr now
  done;
  Alcotest.(check bool) "done" true (Writer.is_done w);
  let r = Writer.result w in
  Alcotest.(check (float 0.)) "valid written" 1. (Tensor.get_flat r.Interp.tensor 0);
  Alcotest.(check (float 0.)) "invalid left at zero" 0. (Tensor.get_flat r.Interp.tensor 1);
  Alcotest.(check bool) "mask recorded" true
    (r.Interp.valid.(0) && (not r.Interp.valid.(1)) && r.Interp.valid.(2))

let test_writer_waits_for_bandwidth () =
  let c = Channel.create ~name:"c" ~capacity:8 in
  let ctrl = Controller.create ~bytes_per_cycle:0. in
  let w =
    Writer.create ~name:"w" ~shape:[ 2 ] ~vector_width:1 ~element_bytes:4 ~controller:ctrl
      ~input:c ()
  in
  Channel.push c (word 1.);
  Controller.begin_cycle ctrl;
  Alcotest.(check bool) "denied" false (Writer.cycle w ~now:0);
  Alcotest.(check int) "word not consumed" 1 (Channel.occupancy c);
  Alcotest.(check bool) "reports bandwidth wait" true
    (Writer.blocked_reason w = Some "waiting for memory bandwidth")

let test_vector_width_must_divide () =
  let tensor = Tensor.of_array [ 3 ] [| 1.; 2.; 3. |] in
  match
    Reader.create ~name:"r" ~tensor ~vector_width:2 ~element_bytes:4
      ~controller:(Controller.unlimited ()) ~outputs:[] ()
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "W=2 over 3 elements must be rejected"

let suite =
  [
    Alcotest.test_case "reader multicasts in order" `Quick test_reader_multicast_order;
    Alcotest.test_case "reader backpressure is all-or-nothing" `Quick
      test_reader_respects_backpressure;
    Alcotest.test_case "reader respects bandwidth" `Quick test_reader_respects_bandwidth;
    Alcotest.test_case "writer drops shrink lanes" `Quick test_writer_drops_invalid_lanes;
    Alcotest.test_case "writer waits for bandwidth" `Quick test_writer_waits_for_bandwidth;
    Alcotest.test_case "vector width divisibility" `Quick test_vector_width_must_divide;
  ]
