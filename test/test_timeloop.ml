open Sf_ir
module Timeloop = Sf_sim.Timeloop
module Engine = Sf_sim.Engine
module Interp = Sf_reference.Interp
module Tensor = Sf_reference.Tensor
module Iterative = Sf_kernels.Iterative
module Swe = Sf_kernels.Swe

let cheap = Engine.Config.make ~latency:Sf_analysis.Latency.cheap ()

let single_jacobi () = Iterative.chain ~shape:[ 8; 12 ] Iterative.Jacobi2d ~length:1

let test_unroll_structure () =
  let p = single_jacobi () in
  let unrolled = Timeloop.unroll p ~steps:3 ~feedback:[ ("f1", "f0") ] in
  Alcotest.(check int) "3x stencils" 3 (List.length unrolled.Program.stencils);
  Alcotest.(check (list string)) "final output" [ "f1_t3" ] unrolled.Program.outputs;
  (* Step 2 reads step 1's result, not the input. *)
  let st2 = Option.get (Program.find_stencil unrolled "f1_t2") in
  Alcotest.(check (list string)) "wiring" [ "f1_t1" ] (Stencil.input_fields st2);
  let st1 = Option.get (Program.find_stencil unrolled "f1_t1") in
  Alcotest.(check (list string)) "first step reads the input" [ "f0" ]
    (Stencil.input_fields st1)

let test_unroll_equals_chain () =
  (* Unrolling the single-step Jacobi k times produces the same values as
     the chain generator of Sec. VIII-C. *)
  let single = single_jacobi () in
  let unrolled = Timeloop.unroll single ~steps:4 ~feedback:[ ("f1", "f0") ] in
  let chain = Iterative.chain ~shape:[ 8; 12 ] Iterative.Jacobi2d ~length:4 in
  let inputs = Interp.random_inputs single in
  let a = (List.assoc "f1_t4" (Interp.run unrolled ~inputs)).Interp.tensor in
  let b = (List.assoc "f4" (Interp.run chain ~inputs)).Interp.tensor in
  Alcotest.(check bool) "identical" true (Tensor.max_abs_diff a b < 1e-12)

let test_unroll_matches_reference_loop () =
  let p = Swe.program ~shape:[ 8; 8 ] () in
  let inputs = Swe.stable_inputs p in
  let looped = Timeloop.run_reference p ~steps:3 ~feedback:Swe.feedback ~inputs in
  let unrolled = Timeloop.unroll p ~steps:3 ~feedback:Swe.feedback in
  let spatial = Interp.run unrolled ~inputs in
  List.iter
    (fun (o, expected) ->
      let got = (List.assoc (o ^ "_t3") spatial).Interp.tensor in
      Alcotest.(check bool) (o ^ " equal") true (Tensor.max_abs_diff expected got < 1e-9))
    looped

let test_simulated_timeloop () =
  let p = Swe.program ~shape:[ 6; 6 ] () in
  let inputs = Swe.stable_inputs p in
  match Timeloop.run_simulated ~config:cheap p ~steps:2 ~feedback:Swe.feedback ~inputs with
  | Error m -> Alcotest.fail m
  | Ok finals ->
      let looped = Timeloop.run_reference p ~steps:2 ~feedback:Swe.feedback ~inputs in
      List.iter
        (fun (o, expected) ->
          Alcotest.(check bool) (o ^ " matches loop") true
            (Tensor.max_abs_diff expected (List.assoc o finals) < 1e-9))
        looped

let test_shared_inputs_not_duplicated () =
  (* Non-feedback inputs (coefficients) are shared across all steps:
     the unrolled program still has the original input list, and its
     perfect-reuse read volume counts them once. *)
  let p = Swe.program ~shape:[ 8; 8 ] () in
  let unrolled = Timeloop.unroll p ~steps:4 ~feedback:Swe.feedback in
  Alcotest.(check int) "same inputs" (List.length p.Program.inputs)
    (List.length unrolled.Program.inputs);
  let c = Sf_analysis.Op_count.of_program unrolled in
  let c1 = Sf_analysis.Op_count.of_program p in
  Alcotest.(check int) "reads unchanged by unrolling" c1.Sf_analysis.Op_count.read_elements
    c.Sf_analysis.Op_count.read_elements

let test_feedback_validation () =
  let p = single_jacobi () in
  let fails feedback =
    match Timeloop.unroll p ~steps:2 ~feedback with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected feedback rejection"
  in
  fails [ ("nope", "f0") ];
  fails [ ("f1", "nope") ];
  fails [ ("f1", "f0"); ("f1", "f0") ];
  let ks = Fixtures.kitchen_sink () in
  match
    Timeloop.unroll ks ~steps:2 ~feedback:[ ("out", "crlat") ]
    (* crlat is lower-dimensional: cannot receive a 3D output *)
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "rank mismatch must be rejected"

let test_non_fedback_outputs_written_each_step () =
  (* An output not in the feedback relation is written at every step. *)
  let b = Builder.create ~name:"obs" ~shape:[ 4; 8 ] () in
  Builder.input b "x";
  Builder.stencil b "next" Builder.E.(acc "x" [ 0; 0 ] *% c 0.5);
  Builder.stencil b "energy" Builder.E.(acc "x" [ 0; 0 ] *% acc "x" [ 0; 0 ]);
  Builder.output b "next";
  Builder.output b "energy";
  let p = Builder.finish b in
  let unrolled = Timeloop.unroll p ~steps:3 ~feedback:[ ("next", "x") ] in
  Alcotest.(check (list string)) "energy written every step, next only at the end"
    [ "energy_t1"; "energy_t2"; "next_t3"; "energy_t3" ]
    unrolled.Program.outputs

let test_final_output_names () =
  let p = single_jacobi () in
  Alcotest.(check (list string)) "names" [ "f1_t5" ]
    (Timeloop.final_output_names p ~steps:5 [ "f1" ])

let test_hdiff_timeloop () =
  (* The weather kernel itself is iterative in production: feed the four
     outputs back and run several diffusion steps, spatially vs
     sequentially. *)
  let p = Sf_kernels.Hdiff.program ~shape:[ 3; 8; 8 ] () in
  let feedback = [ ("u_out", "u"); ("v_out", "v"); ("w_out", "w"); ("pp_out", "pp") ] in
  let inputs = Interp.random_inputs p in
  let looped = Timeloop.run_reference p ~steps:2 ~feedback ~inputs in
  match Timeloop.run_simulated ~config:cheap p ~steps:2 ~feedback ~inputs with
  | Error m -> Alcotest.fail m
  | Ok finals ->
      List.iter
        (fun (o, expected) ->
          Alcotest.(check bool) (o ^ " equal") true
            (Tensor.max_abs_diff expected (List.assoc o finals) < 1e-9))
        looped

let prop_timeloop_on_random_programs =
  (* Whenever a random program has a full-rank input to feed its first
     output back into, unrolling must equal the sequential loop. *)
  QCheck.Test.make ~count:25 ~name:"random programs: unrolled time loop equals sequential"
    Program_gen.arbitrary_program (fun p ->
      let full_rank = Program.rank p in
      let candidate_input =
        List.find_opt (fun f -> Sf_ir.Field.rank f = full_rank) p.Program.inputs
      in
      match (p.Program.outputs, candidate_input) with
      | o :: _, Some f ->
          let feedback = [ (o, f.Sf_ir.Field.name) ] in
          let inputs = Interp.random_inputs p in
          let looped = Timeloop.run_reference p ~steps:2 ~feedback ~inputs in
          let unrolled = Timeloop.unroll p ~steps:2 ~feedback in
          let spatial = Interp.run unrolled ~inputs in
          List.for_all
            (fun (name, expected) ->
              match List.assoc_opt (name ^ "_t2") spatial with
              | None -> false
              | Some (r : Interp.result) ->
                  let ok = ref true in
                  Array.iteri
                    (fun i v ->
                      let v' = Tensor.get_flat expected i in
                      if not ((Float.is_nan v && Float.is_nan v') || Float.abs (v -. v') <= 1e-9)
                      then ok := false)
                    r.Interp.tensor.Tensor.data;
                  !ok)
            looped
      | _, _ -> QCheck.assume_fail ())

let suite =
  [
    Alcotest.test_case "unroll structure" `Quick test_unroll_structure;
    Alcotest.test_case "unroll equals the chain generator" `Quick test_unroll_equals_chain;
    Alcotest.test_case "unroll equals the sequential time loop" `Quick
      test_unroll_matches_reference_loop;
    Alcotest.test_case "simulated time loop validates" `Slow test_simulated_timeloop;
    Alcotest.test_case "shared inputs read once across steps" `Quick
      test_shared_inputs_not_duplicated;
    Alcotest.test_case "feedback validation" `Quick test_feedback_validation;
    Alcotest.test_case "non-fed-back outputs observed each step" `Quick
      test_non_fedback_outputs_written_each_step;
    Alcotest.test_case "final output names" `Quick test_final_output_names;
    Alcotest.test_case "iterative horizontal diffusion" `Slow test_hdiff_timeloop;
    QCheck_alcotest.to_alcotest prop_timeloop_on_random_programs;
  ]
