open Sf_ir
module Tiling = Sf_mapping.Tiling
module Interp = Sf_reference.Interp
module Tensor = Sf_reference.Tensor
module Delay_buffer = Sf_analysis.Delay_buffer

let test_influence_module_direct () =
  let module Influence = Sf_analysis.Influence in
  (* Per-axis accumulation through the hdiff DAG: lap (1) + flux (1) +
     update (1) in i and j, nothing vertical. *)
  let hdiff = Sf_kernels.Hdiff.program ~shape:[ 4; 12; 12 ] () in
  Alcotest.(check (list int)) "hdiff radii" [ 0; 3; 3 ] (Influence.radius hdiff);
  Alcotest.(check int) "max radius" 3 (Influence.max_radius hdiff);
  (* Scalar-only programs have radius 0 on every axis. *)
  let b = Builder.create ~name:"sc" ~shape:[ 4; 4 ] () in
  Builder.input b ~axes:[] "alpha";
  Builder.stencil b "s" Builder.E.(sc "alpha" *% c 2.);
  Builder.output b "s";
  Alcotest.(check (list int)) "scalar radii" [ 0; 0 ] (Influence.radius (Builder.finish b))

let test_influence_radius () =
  (* A 3-stage chain of radius-1 stencils reaches 3 cells. *)
  let chain = Fixtures.chain ~shape:[ 8; 8 ] ~n:3 () in
  Alcotest.(check (list int)) "chain radius" [ 3; 3 ] (Tiling.influence_radius chain);
  (* The diamond: c reads a directly (radius 0 on that path) and through
     b (span +-s on the inner axis). *)
  let diamond = Fixtures.diamond ~shape:[ 8; 16 ] ~span:4 () in
  Alcotest.(check (list int)) "diamond radius" [ 0; 4 ] (Tiling.influence_radius diamond);
  (* Lower-dimensional inputs contribute on the axes they span. *)
  let p = Fixtures.kitchen_sink () in
  let radius = Tiling.influence_radius p in
  Alcotest.(check int) "3 axes" 3 (List.length radius)

let test_plan_structure () =
  let p = Fixtures.chain ~shape:[ 8; 12 ] ~n:2 () in
  let plan = Tiling.plan p ~tile_shape:[ 4; 6 ] in
  Alcotest.(check int) "four tiles" 4 (List.length plan.Tiling.tiles);
  Alcotest.(check (list int)) "halo" [ 2; 2 ] plan.Tiling.halo;
  (* Core regions partition the domain. *)
  let covered =
    List.fold_left
      (fun acc t -> acc + List.fold_left ( * ) 1 t.Tiling.core_extent)
      0 plan.Tiling.tiles
  in
  Alcotest.(check int) "cores cover the domain" (Program.cells p) covered;
  (* Extended regions stay within the domain. *)
  List.iter
    (fun t ->
      List.iteri
        (fun d (o, e) ->
          Alcotest.(check bool) "in bounds" true (o >= 0 && o + e <= List.nth p.Program.shape d))
        (List.combine t.Tiling.ext_origin t.Tiling.ext_extent))
    plan.Tiling.tiles;
  Alcotest.(check bool) "redundancy positive" true (plan.Tiling.redundancy > 0.)

let test_partial_tiles () =
  let p = Fixtures.laplace2d ~shape:[ 7; 10 ] () in
  let plan = Tiling.plan p ~tile_shape:[ 4; 4 ] in
  (* ceil(7/4) * ceil(10/4) = 2 * 3. *)
  Alcotest.(check int) "six tiles" 6 (List.length plan.Tiling.tiles)

let tiled_equals_untiled p tile_shape =
  let inputs = Interp.random_inputs p in
  let untiled = Interp.run p ~inputs in
  let plan = Tiling.plan p ~tile_shape in
  let tiled = Tiling.run_tiled plan ~inputs in
  List.for_all
    (fun (name, (r : Interp.result)) ->
      match List.assoc_opt name tiled with
      | None -> false
      | Some t -> Tensor.max_abs_diff r.Interp.tensor t < 1e-12)
    untiled

let test_tiled_execution_exact () =
  Alcotest.(check bool) "chain" true
    (tiled_equals_untiled (Fixtures.chain ~shape:[ 10; 14 ] ~n:3 ()) [ 4; 5 ]);
  Alcotest.(check bool) "diamond" true
    (tiled_equals_untiled (Fixtures.diamond ~shape:[ 8; 16 ] ~span:3 ()) [ 4; 4 ]);
  Alcotest.(check bool) "fork (multiple outputs)" true
    (tiled_equals_untiled (Fixtures.fork ~shape:[ 9; 9 ] ()) [ 4; 4 ]);
  Alcotest.(check bool) "kitchen sink (lower-dim inputs, copy bc)" true
    (tiled_equals_untiled (Fixtures.kitchen_sink ~shape:[ 4; 6; 8 ] ()) [ 2; 3; 4 ])

let test_hdiff_tiled () =
  let p = Sf_kernels.Hdiff.program ~shape:[ 4; 12; 12 ] () in
  Alcotest.(check bool) "hdiff tiled == untiled" true (tiled_equals_untiled p [ 2; 6; 6 ])

let test_buffer_savings () =
  (* Sec. IX-D: tiling bounds the internal/delay buffer sizes, which are
     proportional to (D-1)-dimensional slices. *)
  let p = Fixtures.chain ~shape:[ 64; 256 ] ~n:4 () in
  let untiled =
    Delay_buffer.total_fast_memory_elements (Delay_buffer.analyze p)
  in
  let plan = Tiling.plan p ~tile_shape:[ 64; 32 ] in
  let tiled = Tiling.buffer_elements_per_tile plan in
  Alcotest.(check bool)
    (Printf.sprintf "buffers shrink (%d -> %d)" untiled tiled)
    true
    (tiled * 4 < untiled)

let test_redundancy_grows_with_depth () =
  (* Deeper DAGs need wider halos: redundancy at a fixed tile size grows
     with chain length (Sec. IX-D). *)
  let redundancy n =
    (Tiling.plan (Fixtures.chain ~shape:[ 32; 32 ] ~n ()) ~tile_shape:[ 8; 8 ]).Tiling.redundancy
  in
  Alcotest.(check bool) "monotone in depth" true
    (redundancy 1 < redundancy 2 && redundancy 2 < redundancy 4)

let test_redundancy_shrinks_with_tile_size () =
  let p = Fixtures.chain ~shape:[ 32; 32 ] ~n:2 () in
  let redundancy tile = (Tiling.plan p ~tile_shape:[ tile; tile ]).Tiling.redundancy in
  Alcotest.(check bool) "monotone in tile size" true
    (redundancy 16 < redundancy 8 && redundancy 8 < redundancy 4)

let prop_tiled_exact =
  let gen =
    QCheck.Gen.(
      let* n = int_range 1 3 in
      let* tile = oneofl [ 3; 4; 5 ] in
      let* span = int_range 1 2 in
      let* kind = int_range 0 1 in
      let p =
        if kind = 0 then Fixtures.chain ~shape:[ 9; 12 ] ~n ()
        else Fixtures.diamond ~shape:[ 9; 12 ] ~span ()
      in
      return (p, tile))
  in
  QCheck.Test.make ~count:30 ~name:"tiled execution equals untiled on random programs"
    (QCheck.make ~print:(fun (p, t) -> Printf.sprintf "%s tile=%d" p.Program.name t) gen)
    (fun (p, tile) -> tiled_equals_untiled p [ tile; tile ])

let suite =
  [
    Alcotest.test_case "influence module direct" `Quick test_influence_module_direct;
    Alcotest.test_case "influence radius" `Quick test_influence_radius;
    Alcotest.test_case "plan structure" `Quick test_plan_structure;
    Alcotest.test_case "partial tiles" `Quick test_partial_tiles;
    Alcotest.test_case "tiled execution is exact" `Quick test_tiled_execution_exact;
    Alcotest.test_case "hdiff tiles correctly" `Slow test_hdiff_tiled;
    Alcotest.test_case "tiling shrinks on-chip buffers (sec 9D)" `Quick test_buffer_savings;
    Alcotest.test_case "redundancy grows with DAG depth" `Quick test_redundancy_grows_with_depth;
    Alcotest.test_case "redundancy shrinks with tile size" `Quick
      test_redundancy_shrinks_with_tile_size;
    QCheck_alcotest.to_alcotest prop_tiled_exact;
  ]
