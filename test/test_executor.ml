(* The shared work-stealing domain pool. Determinism is the load-bearing
   property: every embarrassingly-parallel caller (fault campaigns,
   probe arms, autotune sweeps) promises byte-identical results for any
   --jobs, and that only holds if [map] really is [Array.init] no matter
   how the steals interleave. *)
module Executor = Sf_support.Executor
module Engine = Sf_sim.Engine
module Faults = Sf_sim.Faults
module Diag = Sf_support.Diag

let test_inline_when_serial () =
  Executor.with_pool ~jobs:1 (fun pool ->
      Alcotest.(check int) "jobs clamped to >= 1" 1 (Executor.jobs pool);
      let r = Executor.map pool 10 (fun i -> i * i) in
      Alcotest.(check (array int)) "serial map" (Array.init 10 (fun i -> i * i)) r);
  Executor.with_pool ~jobs:(-3) (fun pool ->
      Alcotest.(check int) "negative jobs clamped" 1 (Executor.jobs pool))

let test_map_matches_serial () =
  (* Unbalanced tasks (quadratic spin on high indices) push work through
     the stealing path; the result must still be index-ordered. *)
  let n = 64 in
  let f i =
    let acc = ref 0 in
    for j = 0 to i * i do
      acc := (!acc * 31) + j
    done;
    (i, !acc)
  in
  let serial = Array.init n f in
  Executor.with_pool ~jobs:4 (fun pool ->
      for _ = 1 to 5 do
        Alcotest.(check bool) "jobs=4 equals serial" true (Executor.map pool n f = serial)
      done)

let test_map_list_preserves_order () =
  Executor.with_pool ~jobs:3 (fun pool ->
      let xs = [ "a"; "bb"; "ccc"; "dddd"; "e" ] in
      Alcotest.(check (list int)) "order kept" [ 1; 2; 3; 4; 1 ]
        (Executor.map_list pool String.length xs);
      Alcotest.(check (list int)) "empty list" [] (Executor.map_list pool String.length []))

let test_every_task_runs_once () =
  Executor.with_pool ~jobs:4 (fun pool ->
      let n = 500 in
      let hits = Array.init n (fun _ -> Atomic.make 0) in
      Executor.run pool n (fun i -> Atomic.incr hits.(i));
      Array.iteri
        (fun i c ->
          if Atomic.get c <> 1 then
            Alcotest.failf "task %d ran %d times" i (Atomic.get c))
        hits)

exception Boom of int

let test_exception_propagates_and_pool_survives () =
  Executor.with_pool ~jobs:4 (fun pool ->
      (match Executor.map pool 100 (fun i -> if i = 37 then raise (Boom i) else i) with
      | _ -> Alcotest.fail "worker exception must re-raise in the submitter"
      | exception Boom 37 -> ()
      | exception e -> Alcotest.failf "wrong exception: %s" (Printexc.to_string e));
      (* The pool must stay usable after a failed batch. *)
      let r = Executor.map pool 20 (fun i -> i + 1) in
      Alcotest.(check (array int)) "pool survives" (Array.init 20 (fun i -> i + 1)) r)

let test_shutdown_idempotent () =
  let pool = Executor.create ~jobs:3 () in
  Alcotest.(check (array int)) "works" [| 0; 1; 2 |] (Executor.map pool 3 (fun i -> i));
  Executor.shutdown pool;
  Executor.shutdown pool

(* The real consumer: a pinned fault-campaign fixture fanned over the
   pool must produce a report structurally identical to the serial
   one — same seeds, same outcomes, same injected-event logs. *)
let test_campaign_identical_across_jobs () =
  let p = Fixtures.diamond () in
  let config =
    Engine.Config.make ~latency:Sf_analysis.Latency.cheap
      ~safety:(Engine.Config.safety ~deadlock_window:256 ())
      ()
  in
  let inputs = Sf_reference.Interp.random_inputs ~seed:7 p in
  let run jobs =
    match Faults.campaign ~config ~inputs ~schedules:8 ~jobs p with
    | Ok r -> r
    | Error d -> Alcotest.failf "baseline failed: %s" (Diag.to_string d)
  in
  let serial = run 1 in
  List.iter
    (fun jobs ->
      let r = run jobs in
      Alcotest.(check bool)
        (Printf.sprintf "report at jobs=%d identical to serial" jobs)
        true (r = serial))
    [ 2; 4 ]

(* Crash isolation: a submitted task whose exception escapes kills its
   worker, but the pool respawns a replacement — later submissions and
   batches still run, and the crash is counted. *)
let test_submit_crash_respawns_worker () =
  let pool = Executor.create ~dedicated:true ~jobs:2 () in
  Alcotest.(check int) "both workers alive" 2 (Executor.alive pool);
  let crashed = Atomic.make 0 in
  for _ = 1 to 3 do
    Executor.submit pool (fun () ->
        Atomic.incr crashed;
        failwith "task bomb")
  done;
  (* Wait for the crashes to land and the replacements to spawn. *)
  let deadline = Unix.gettimeofday () +. 5.0 in
  while Executor.crashes pool < 3 && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.005
  done;
  Alcotest.(check int) "every bomb ran" 3 (Atomic.get crashed);
  Alcotest.(check int) "three crashes recorded" 3 (Executor.crashes pool);
  Alcotest.(check int) "pool respawned to full strength" 2 (Executor.alive pool);
  (* The respawned workers still execute work. *)
  let ran = Atomic.make 0 in
  for _ = 1 to 4 do
    Executor.submit pool (fun () -> Atomic.incr ran)
  done;
  let deadline = Unix.gettimeofday () +. 5.0 in
  while Atomic.get ran < 4 && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.005
  done;
  Alcotest.(check int) "pool still serves after crashes" 4 (Atomic.get ran);
  Executor.shutdown pool

let prop_map_deterministic =
  QCheck.Test.make ~count:30 ~name:"map: any jobs equals jobs=1"
    QCheck.(pair (int_range 0 40) (int_range 2 6))
    (fun (n, jobs) ->
      let f i = (i * 2654435761) land 0xFFFF in
      let serial = Array.init n f in
      Executor.with_pool ~jobs (fun pool -> Executor.map pool n f = serial))

let suite =
  [
    Alcotest.test_case "jobs <= 1 runs inline" `Quick test_inline_when_serial;
    Alcotest.test_case "map: unbalanced work, identical results" `Quick
      test_map_matches_serial;
    Alcotest.test_case "map_list preserves order" `Quick test_map_list_preserves_order;
    Alcotest.test_case "run: every task exactly once" `Quick test_every_task_runs_once;
    Alcotest.test_case "exception propagation; pool survives" `Quick
      test_exception_propagates_and_pool_survives;
    Alcotest.test_case "shutdown is idempotent" `Quick test_shutdown_idempotent;
    Alcotest.test_case "submit crash respawns worker" `Quick
      test_submit_crash_respawns_worker;
    Alcotest.test_case "fault campaign identical across jobs" `Quick
      test_campaign_identical_across_jobs;
    QCheck_alcotest.to_alcotest prop_map_deterministic;
  ]
