module Autotune = Sf_mapping.Autotune
module Device = Sf_models.Device
module Hdiff = Sf_kernels.Hdiff
module Iterative = Sf_kernels.Iterative

let dev = Device.stratix10

let test_hdiff_is_bandwidth_bound () =
  let p = Hdiff.program () in
  let best, sweep = Autotune.choose ~device:dev p in
  (* Sec. IX-B: without vectorization hdiff needs ~9 operands/cycle
     (10.8 GB/s) - not bandwidth bound; by W=8 the demand (86.4 GB/s)
     exceeds the 58.3 GB/s effective cap. *)
  let at w = List.find (fun e -> e.Autotune.vector_width = w) sweep in
  Alcotest.(check bool) "W=1 not bandwidth bound" false (at 1).Autotune.bandwidth_bound;
  Alcotest.(check bool) "W=8 bandwidth bound" true (at 8).Autotune.bandwidth_bound;
  (* Once bandwidth-bound, wider vectors stop helping: the best modelled
     width saturates the memory system. *)
  Alcotest.(check bool)
    (Printf.sprintf "best W=%d >= 8" best.Autotune.vector_width)
    true
    (best.Autotune.vector_width >= 8);
  Alcotest.(check bool) "best is feasible" true (best.Autotune.fits && best.Autotune.network_ok);
  (* The modelled performance at the chosen width is the bandwidth roof. *)
  let roof =
    Sf_analysis.Roofline.attainable_ops_per_s
      ~ai_ops_per_byte:(Sf_analysis.Op_count.ai_ops_per_byte p)
      ~bandwidth_bytes_per_s:dev.Device.vector_bw_cap
  in
  Alcotest.(check bool)
    (Printf.sprintf "modeled %.1f ~ roof %.1f GOp/s" (best.Autotune.modeled_ops_per_s /. 1e9)
       (roof /. 1e9))
    true
    (Float.abs ((best.Autotune.modeled_ops_per_s /. roof) -. 1.) < 0.1)

let test_small_kernel_prefers_wide () =
  (* A single compute-light stencil on a small domain never saturates
     bandwidth: wider is better until resources or legality stop it. *)
  let p = Iterative.single ~shape:[ 64; 64 ] Iterative.Jacobi2d in
  let best, sweep = Autotune.choose ~device:dev ~max_width:16 p in
  Alcotest.(check int) "widest legal width wins" 16 best.Autotune.vector_width;
  List.iter
    (fun e -> Alcotest.(check bool) "all fit" true e.Autotune.fits)
    sweep

let test_network_constrains_multi_device () =
  let p = Iterative.chain ~shape:[ 64; 64 ] Iterative.Jacobi2d ~length:4 in
  let best, _ = Autotune.choose ~devices:4 ~device:dev ~max_width:16 p in
  (* Across devices the SMI links cap the stream width at 4
     (Sec. VIII-C). *)
  Alcotest.(check bool)
    (Printf.sprintf "multi-device W=%d <= 4" best.Autotune.vector_width)
    true
    (best.Autotune.vector_width <= 4)

let test_monotone_until_bound () =
  let p = Hdiff.program () in
  let _, sweep = Autotune.choose ~device:dev p in
  let perf w =
    (List.find (fun e -> e.Autotune.vector_width = w) sweep).Autotune.modeled_ops_per_s
  in
  Alcotest.(check bool) "W=2 beats W=1" true (perf 2 > perf 1);
  Alcotest.(check bool) "W=4 beats W=2" true (perf 4 > perf 2)

let suite =
  [
    Alcotest.test_case "hdiff: bandwidth-bound at W>=8 (sec 9B)" `Quick
      test_hdiff_is_bandwidth_bound;
    Alcotest.test_case "light kernels prefer the widest vectors" `Quick
      test_small_kernel_prefers_wide;
    Alcotest.test_case "network caps multi-device width" `Quick test_network_constrains_multi_device;
    Alcotest.test_case "performance monotone until the bound" `Quick test_monotone_until_bound;
  ]
