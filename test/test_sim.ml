open Sf_ir
module Engine = Sf_sim.Engine
module Telemetry = Sf_sim.Telemetry
module Interp = Sf_reference.Interp
module Tensor = Sf_reference.Tensor
module E = Builder.E

let cheap_config = Engine.Config.make ~latency:Sf_analysis.Latency.cheap ()

let check_validates ?config ?placement p () =
  match Engine.run_and_validate ?config ?placement p with
  | Ok _ -> ()
  | Error m -> Alcotest.fail (Sf_support.Diag.to_string m)

let test_cycle_count_matches_model () =
  let p = Fixtures.chain ~shape:[ 6; 10 ] ~n:3 () in
  match Engine.run_exn ~config:cheap_config p with
  | Engine.Deadlocked _ -> Alcotest.fail "unexpected deadlock"
  | Engine.Completed stats ->
      (* Eq. 1: C = L + N. The simulator adds a bounded per-hop overhead
         (reader/writer hand-off and flush visibility). *)
      let depth = 3 + 2 in
      Alcotest.(check bool)
        (Printf.sprintf "measured %d vs predicted %d" stats.Engine.cycles
           stats.Engine.predicted_cycles)
        true
        (stats.Engine.cycles >= stats.Engine.predicted_cycles
        && stats.Engine.cycles <= stats.Engine.predicted_cycles + (4 * depth) + 8)

let test_throughput_of_diamond () =
  (* With analysed buffers the diamond streams at full rate: the total
     runtime stays within a constant of L + N even though inputs reach c
     along paths of very different latency. *)
  let p = Fixtures.diamond ~shape:[ 8; 16 ] ~span:5 () in
  match Engine.run_exn ~config:cheap_config p with
  | Engine.Deadlocked _ -> Alcotest.fail "unexpected deadlock"
  | Engine.Completed stats ->
      Alcotest.(check bool) "no throughput collapse" true
        (stats.Engine.cycles <= stats.Engine.predicted_cycles + 40)

let test_deadlock_without_buffers () =
  (* Fig. 4: removing the delay buffer from the skip edge a -> c deadlocks
     the diamond once b's initialization exceeds the channel slack. *)
  let p = Fixtures.diamond ~shape:[ 8; 16 ] ~span:5 () in
  let config =
    {
      cheap_config with
      Engine.Config.override_edge_buffers = [ (("a", "c"), 0) ];
      Engine.Config.channel_slack = 2;
      Engine.Config.safety = Engine.Config.safety ~deadlock_window:256 ();
    }
  in
  match Engine.run_exn ~config p with
  | Engine.Completed _ -> Alcotest.fail "expected deadlock with zeroed skip buffer"
  | Engine.Deadlocked { blocked; wait_cycle; _ } ->
      Alcotest.(check bool) "diagnostics identify blockage" true (blocked <> []);
      (* The circular wait of Fig. 4: a -> c -> b -> a (in wait-for
         order), possibly entered through the reader. *)
      List.iter
        (fun participant ->
          Alcotest.(check bool)
            (participant ^ " in the wait cycle")
            true
            (List.exists (String.equal participant) wait_cycle))
        [ "a"; "b"; "c" ]

let test_deadlock_resolved_by_buffers () =
  let p = Fixtures.diamond ~shape:[ 8; 16 ] ~span:5 () in
  let config = { cheap_config with
      Engine.Config.channel_slack = 2;
      Engine.Config.safety = Engine.Config.safety ~deadlock_window:256 ();
    } in
  match Engine.run_and_validate ~config p with
  | Ok _ -> ()
  | Error m ->
      Alcotest.fail ("analysed buffers should prevent deadlock: " ^ Sf_support.Diag.to_string m)

let test_vector_width_equivalence () =
  let inputs = Interp.random_inputs (Fixtures.chain ~shape:[ 4; 16 ] ~n:3 ~vector_width:1 ()) in
  let run w =
    let p = Fixtures.chain ~shape:[ 4; 16 ] ~n:3 ~vector_width:w () in
    match Engine.run_exn ~config:cheap_config ~inputs p with
    | Engine.Deadlocked _ -> Alcotest.fail "deadlock"
    | Engine.Completed stats -> (List.assoc "f3" stats.Engine.results).Interp.tensor
  in
  let base = run 1 in
  List.iter
    (fun w ->
      let t = run w in
      Alcotest.(check bool)
        (Printf.sprintf "W=%d matches W=1" w)
        true
        (Tensor.max_abs_diff base t < 1e-12))
    [ 2; 4 ]

let test_vectorization_reduces_cycles () =
  let cycles w =
    let p = Fixtures.chain ~shape:[ 8; 32 ] ~n:3 ~vector_width:w () in
    match Engine.run_exn ~config:cheap_config p with
    | Engine.Deadlocked _ -> Alcotest.fail "deadlock"
    | Engine.Completed stats -> stats.Engine.cycles
  in
  let c1 = cycles 1 and c4 = cycles 4 in
  Alcotest.(check bool)
    (Printf.sprintf "W=4 (%d cycles) is ~4x faster than W=1 (%d cycles)" c4 c1)
    true
    (float_of_int c1 /. float_of_int c4 > 3.)

let test_multi_device_chain () =
  (* Stages 1-2 on device 0, stages 3-4 on device 1 (Fig. 5). *)
  let p = Fixtures.chain ~shape:[ 6; 10 ] ~n:4 () in
  let placement name =
    match name with "f1" | "f2" -> 0 | "f3" | "f4" -> 1 | _ -> 0
  in
  let config = { cheap_config with Engine.Config.network = Engine.Config.network ~net_latency_cycles:16 () } in
  (match Engine.run_and_validate ~config ~placement p with
  | Ok stats ->
      Alcotest.(check bool) "network used" true (stats.Engine.network_bytes > 0)
  | Error m -> Alcotest.fail (Sf_support.Diag.to_string m));
  match Engine.run_and_validate ~config p with
  | Ok stats -> Alcotest.(check int) "single device uses no network" 0 stats.Engine.network_bytes
  | Error m -> Alcotest.fail (Sf_support.Diag.to_string m)

let test_network_bandwidth_limits_throughput () =
  let p = Fixtures.chain ~shape:[ 16; 48 ] ~n:2 () in
  let placement = function "f2" -> 1 | _ -> 0 in
  let dtype_bytes = 4 in
  let run net =
    let config =
      {
        cheap_config with
        Engine.Config.network =
          Engine.Config.network ~net_bytes_per_cycle:net ~net_latency_cycles:4 ();
      }
    in
    match Engine.run_exn ~config ~placement p with
    | Engine.Deadlocked _ -> Alcotest.fail "deadlock"
    | Engine.Completed stats -> stats.Engine.cycles
  in
  let fast = run (float_of_int dtype_bytes) in
  let slow = run (float_of_int dtype_bytes /. 2.) in
  Alcotest.(check bool)
    (Printf.sprintf "halving link bandwidth ~doubles runtime (%d -> %d)" fast slow)
    true
    (float_of_int slow /. float_of_int fast > 1.6)

let test_memory_bandwidth_limits_throughput () =
  let p = Fixtures.laplace2d ~shape:[ 16; 64 ] () in
  let run bw =
    let config =
      { cheap_config with
        Engine.Config.bandwidth = Engine.Config.bandwidth ~mem_bytes_per_cycle:bw () }
    in
    match Engine.run_exn ~config p with
    | Engine.Deadlocked _ -> Alcotest.fail "deadlock"
    | Engine.Completed stats -> stats.Engine.cycles
  in
  let unconstrained = run infinity in
  (* laplace2d streams 1 read + 1 write of 4 B per cycle = 8 B/cycle. *)
  let constrained = run 4. in
  Alcotest.(check bool)
    (Printf.sprintf "half the needed bandwidth ~halves throughput (%d -> %d)" unconstrained
       constrained)
    true
    (float_of_int constrained /. float_of_int unconstrained > 1.7)

let test_bytes_accounting () =
  let p = Fixtures.kitchen_sink ~shape:[ 4; 6; 8 ] () in
  match Engine.run_exn ~config:cheap_config p with
  | Engine.Deadlocked _ -> Alcotest.fail "deadlock"
  | Engine.Completed stats ->
      let counts = Sf_analysis.Op_count.of_program p in
      Alcotest.(check int) "reads match the perfect-reuse model"
        counts.Sf_analysis.Op_count.read_bytes stats.Engine.bytes_read;
      (* The output is shrunk, so strictly fewer bytes are written than
         cells exist. *)
      Alcotest.(check bool) "shrink writes fewer bytes" true
        (stats.Engine.bytes_written < counts.Sf_analysis.Op_count.written_bytes);
      Alcotest.(check bool) "writes happen" true (stats.Engine.bytes_written > 0)

let test_high_water_within_capacity () =
  let p = Fixtures.diamond ~shape:[ 8; 16 ] ~span:4 () in
  match Engine.run_exn ~config:cheap_config p with
  | Engine.Deadlocked _ -> Alcotest.fail "deadlock"
  | Engine.Completed stats ->
      List.iter
        (fun (name, high, cap) ->
          Alcotest.(check bool) (name ^ " within capacity") true (high <= cap))
        (Telemetry.channel_high_water stats.Engine.telemetry);
      (* The skip edge actually used its delay buffer. *)
      let skip =
        List.find
          (fun (name, _, _) -> String.equal name "a->c")
          (Telemetry.channel_high_water stats.Engine.telemetry)
      in
      let _, high, _ = skip in
      Alcotest.(check bool) "skip edge buffered data" true (high > 1)

(* Property: on a family of random programs, the streamed results equal
   the sequential reference exactly (modulo float tolerance). *)
let random_program_gen =
  QCheck.Gen.(
    let* kind = int_range 0 3 in
    match kind with
    | 0 ->
        let* n = int_range 1 4 in
        let* w = oneofl [ 1; 2 ] in
        return (Fixtures.chain ~shape:[ 4; 8 ] ~n ~vector_width:w ())
    | 1 ->
        let* span = int_range 1 4 in
        return (Fixtures.diamond ~shape:[ 4; 12 ] ~span ())
    | 2 ->
        let* w = oneofl [ 1; 2; 4 ] in
        return (Fixtures.kitchen_sink ~shape:[ 3; 4; 8 ] ~vector_width:w ())
    | _ -> return (Fixtures.fork ~shape:[ 6; 6 ] ()))

let prop_sim_matches_reference =
  QCheck.Test.make ~count:40 ~name:"simulator output equals reference interpreter"
    (QCheck.make ~print:(fun p -> p.Program.name) random_program_gen) (fun p ->
      match Engine.run_and_validate ~config:cheap_config p with Ok _ -> true | Error _ -> false)

let test_buffer_tightness () =
  (* The analysed depth is load-bearing: halving the skip-edge buffer
     costs throughput (the join stalls), while the full buffer streams at
     the modelled rate. *)
  let p = Fixtures.diamond ~shape:[ 16; 32 ] ~span:8 () in
  let analysis = Sf_analysis.Delay_buffer.analyze ~config:Sf_analysis.Latency.cheap p in
  let full = Sf_analysis.Delay_buffer.buffer_for analysis ~src:"a" ~dst:"c" in
  let run buffer =
    let config =
      {
        cheap_config with
        Engine.Config.override_edge_buffers = [ (("a", "c"), buffer) ];
        Engine.Config.channel_slack = 2;
      }
    in
    match Engine.run_exn ~config p with
    | Engine.Deadlocked _ -> max_int
    | Engine.Completed stats -> stats.Engine.cycles
  in
  let with_full = run full and with_half = run (full / 2) in
  Alcotest.(check bool)
    (Printf.sprintf "halved buffer is slower or deadlocks (%d vs %d)" with_half with_full)
    true
    (with_half > with_full + 5)

let test_trace_sampling () =
  let p = Fixtures.diamond ~shape:[ 8; 16 ] ~span:4 () in
  let config =
    { cheap_config with Engine.Config.tracing = Engine.Config.tracing ~trace_interval:8 () }
  in
  match Engine.run_exn ~config p with
  | Engine.Deadlocked _ -> Alcotest.fail "deadlock"
  | Engine.Completed stats ->
      Alcotest.(check bool) "samples collected" true (List.length stats.Engine.telemetry.Telemetry.samples > 2);
      let expected = (stats.Engine.cycles / 8) + 1 in
      Alcotest.(check bool) "one sample per interval" true
        (abs (List.length stats.Engine.telemetry.Telemetry.samples - expected) <= 1);
      List.iter
        (fun (cycle, occupancies) ->
          Alcotest.(check int) "aligned" 0 (cycle mod 8);
          List.iter
            (fun (name, occ) ->
              let _, _, cap =
                List.find
                  (fun (n, _, _) -> String.equal n name)
                  (Telemetry.channel_high_water stats.Engine.telemetry)
              in
              Alcotest.(check bool) (name ^ " within capacity") true (occ >= 0 && occ <= cap))
            occupancies)
        stats.Engine.telemetry.Telemetry.samples;
      (* The skip-edge buffer visibly fills during the run. *)
      let peak =
        List.fold_left
          (fun acc (_, occupancies) ->
            match List.assoc_opt "a->c" occupancies with Some o -> max acc o | None -> acc)
          0 stats.Engine.telemetry.Telemetry.samples
      in
      Alcotest.(check bool) "skip edge fills" true (peak > 1)

let suite =
  [
    Alcotest.test_case "laplace validates against reference" `Quick
      (check_validates ~config:cheap_config (Fixtures.laplace2d ()));
    Alcotest.test_case "kitchen sink validates (bcs, shrink, lower-dim)" `Quick
      (check_validates ~config:cheap_config (Fixtures.kitchen_sink ()));
    Alcotest.test_case "fork with two outputs validates" `Quick
      (check_validates ~config:cheap_config (Fixtures.fork ()));
    Alcotest.test_case "cycle count matches C = L + N" `Quick test_cycle_count_matches_model;
    Alcotest.test_case "diamond streams at full throughput" `Quick test_throughput_of_diamond;
    Alcotest.test_case "fig 4: deadlock without delay buffers" `Quick test_deadlock_without_buffers;
    Alcotest.test_case "fig 4: analysed buffers prevent deadlock" `Quick
      test_deadlock_resolved_by_buffers;
    Alcotest.test_case "vector widths compute identical results" `Quick
      test_vector_width_equivalence;
    Alcotest.test_case "vectorization speeds up the pipeline" `Quick
      test_vectorization_reduces_cycles;
    Alcotest.test_case "multi-device chain validates (fig 5)" `Quick test_multi_device_chain;
    Alcotest.test_case "network bandwidth bound" `Quick test_network_bandwidth_limits_throughput;
    Alcotest.test_case "memory bandwidth bound" `Quick test_memory_bandwidth_limits_throughput;
    Alcotest.test_case "byte accounting matches perfect reuse" `Quick test_bytes_accounting;
    Alcotest.test_case "channel high-water within capacity" `Quick test_high_water_within_capacity;
    Alcotest.test_case "occupancy trace sampling" `Quick test_trace_sampling;
    Alcotest.test_case "delay buffers are load-bearing" `Quick test_buffer_tightness;
    QCheck_alcotest.to_alcotest prop_sim_matches_reference;
  ]
