(* Fixed-seed fault campaign over the seed example programs, wired into
   `dune build @faults` (and through it into `dune runtest`). For every
   example: a seeded campaign at the analysed depths must complete
   bit-identical to the unperturbed run, and under-provisioning the
   tightest delay-buffer edge to its largest deadlocking capacity must
   report a deterministic SF0701 with fault-attribution notes. This is
   the end-to-end form of the claims test/test_faults.ml pins on the
   curated fixtures. *)
open Stencilflow

let schedules = 5

let examples_dir =
  List.find Sys.file_exists
    [ "examples/programs"; "../examples/programs"; "../../examples/programs" ]

let check name ok = if not ok then failwith name

let load file =
  match Program_json.of_file file with
  | Ok p -> p
  | Error ds -> failwith (String.concat "; " (List.map Diag.to_string ds))

let run_example file =
  let p = load (Filename.concat examples_dir file) in
  let inputs = Interp.random_inputs ~seed:42 p in
  (* The analysed-depth claim is per edge of the UNFUSED graph. *)
  let analysis = Delay_buffer.analyze p in
  (match Faults.campaign ~inputs ~schedules p with
  | Error d -> failwith (Printf.sprintf "%s: baseline failed: %s" file (Diag.to_string d))
  | Ok report ->
      List.iter
        (fun (r, d) ->
          failwith
            (Printf.sprintf "%s: seed %d FAILED: %s" file r.Faults.seed (Diag.to_string d)))
        (Faults.failures report);
      Printf.printf "%-32s campaign %d/%d bit-identical (%d cycles)" file schedules
        schedules report.Faults.baseline_cycles);
  (match Faults.probe_tightest ~inputs ~analysis p with
  | None -> Printf.printf ", no positive-depth edge\n"
  | Some { Faults.tight_capacity = None; edge = src, dst; _ } ->
      Printf.printf ", %s->%s not load-bearing\n" src dst
  | Some { Faults.tight_capacity = Some tight; probe_diag; edge = _; analysed_depth } -> (
      match probe_diag with
      | None -> failwith (file ^ ": probe run unexpectedly completed")
      | Some d ->
          check
            (file ^ ": probe must deadlock (SF0701)")
            (String.equal d.Diag.code Diag.Code.sim_deadlock);
          check
            (file ^ ": probe diag must attribute injected faults")
            (List.exists (String.starts_with ~prefix:"fault-attribution:") d.Diag.notes);
          Printf.printf ", tight capacity %d of analysed %d: %s\n" tight analysed_depth
            d.Diag.code));
  flush stdout

let () =
  let examples =
    List.sort compare
      (List.filter
         (fun f -> Filename.check_suffix f ".json")
         (Array.to_list (Sys.readdir examples_dir)))
  in
  List.iter run_example examples;
  Printf.printf "faults smoke: %d example(s) validated\n" (List.length examples)
