module G = Sf_support.Dgraph.Make (String)

let build vertices edges =
  let g = List.fold_left (fun g v -> G.add_vertex g v ()) G.empty vertices in
  List.fold_left (fun g (src, dst) -> G.add_edge g ~src ~dst ()) g edges

let diamond = build [ "a"; "b"; "c"; "d" ] [ ("a", "b"); ("a", "c"); ("b", "d"); ("c", "d") ]

let test_degrees () =
  Alcotest.(check int) "out a" 2 (G.out_degree diamond "a");
  Alcotest.(check int) "in d" 2 (G.in_degree diamond "d");
  Alcotest.(check (list string)) "sources" [ "a" ] (G.sources diamond);
  Alcotest.(check (list string)) "sinks" [ "d" ] (G.sinks diamond)

let test_topo () =
  match G.topological_sort diamond with
  | Error _ -> Alcotest.fail "diamond is a DAG"
  | Ok order ->
      Alcotest.(check int) "all vertices" 4 (List.length order);
      let pos v =
        let rec go i = function
          | [] -> Alcotest.fail (v ^ " missing")
          | x :: rest -> if String.equal x v then i else go (i + 1) rest
        in
        go 0 order
      in
      List.iter
        (fun (src, dst, ()) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s before %s" src dst)
            true
            (pos src < pos dst))
        (G.edges diamond)

let test_cycle_detection () =
  let cyclic = build [ "x"; "y"; "z" ] [ ("x", "y"); ("y", "z"); ("z", "x") ] in
  Alcotest.(check bool) "cyclic" false (G.is_dag cyclic);
  Alcotest.(check bool) "diamond acyclic" true (G.is_dag diamond);
  match G.topological_sort cyclic with
  | Ok _ -> Alcotest.fail "cycle not detected"
  | Error witnesses -> Alcotest.(check bool) "witnesses nonempty" true (witnesses <> [])

let test_self_loop () =
  let g = build [ "v" ] [ ("v", "v") ] in
  Alcotest.(check bool) "self loop is a cycle" false (G.is_dag g)

let test_remove () =
  let g = G.remove_vertex diamond "b" in
  Alcotest.(check bool) "vertex gone" false (G.mem_vertex g "b");
  Alcotest.(check bool) "edge gone" false (G.mem_edge g ~src:"a" ~dst:"b");
  Alcotest.(check int) "d in-degree drops" 1 (G.in_degree g "d");
  let g2 = G.remove_edge diamond ~src:"a" ~dst:"c" in
  Alcotest.(check bool) "edge removed" false (G.mem_edge g2 ~src:"a" ~dst:"c");
  Alcotest.(check bool) "other edge kept" true (G.mem_edge g2 ~src:"a" ~dst:"b")

let test_reachability () =
  let g = build [ "a"; "b"; "c"; "d"; "e" ] [ ("a", "b"); ("b", "c"); ("d", "e") ] in
  Alcotest.(check (list string)) "from a" [ "a"; "b"; "c" ] (G.reachable_from g [ "a" ]);
  Alcotest.(check (list string)) "backwards from c" [ "a"; "b"; "c" ]
    (G.reachable_from (G.transpose g) [ "c" ])

let test_longest_path () =
  (* a(5) -> b(3) -> d(1); a -> c(10) -> d. dist d = max(5+3, 5+10) = 15. *)
  let weight = function "a" -> 5. | "b" -> 3. | "c" -> 10. | "d" -> 1. | _ -> 0. in
  let dist, total = G.longest_path diamond ~weight in
  Alcotest.(check (float 0.)) "dist a" 0. (dist "a");
  Alcotest.(check (float 0.)) "dist b" 5. (dist "b");
  Alcotest.(check (float 0.)) "dist d" 15. (dist "d");
  Alcotest.(check (float 0.)) "total" 16. total

let test_edge_relabel () =
  let g = List.fold_left (fun g v -> G.add_vertex g v 0) G.empty [ "u"; "v" ] in
  let g = G.add_edge g ~src:"u" ~dst:"v" 1 in
  let g = G.add_edge g ~src:"u" ~dst:"v" 2 in
  Alcotest.(check int) "single edge" 1 (G.num_edges g);
  Alcotest.(check (option int)) "label replaced" (Some 2) (G.find_edge g ~src:"u" ~dst:"v")

(* Property: on random DAGs (edges only from lower to higher index),
   topological_sort succeeds and respects all edges. *)
let random_dag_gen =
  let open QCheck.Gen in
  int_range 1 12 >>= fun n ->
  let vertex i = Printf.sprintf "v%d" i in
  let all_pairs =
    List.concat_map
      (fun i -> List.map (fun j -> (vertex i, vertex j)) (List.filter (fun j -> j > i) (List.init n Fun.id)))
      (List.init n Fun.id)
  in
  let* edges = List.fold_left
    (fun acc pair ->
      let* acc = acc in
      let* keep = bool in
      return (if keep then pair :: acc else acc))
    (return []) all_pairs
  in
  return (build (List.init n vertex) edges)

let prop_topo_respects_edges =
  QCheck.Test.make ~count:100 ~name:"topological sort respects edges on random DAGs"
    (QCheck.make random_dag_gen) (fun g ->
      match G.topological_sort g with
      | Error _ -> false
      | Ok order ->
          let position = Hashtbl.create 16 in
          List.iteri (fun i v -> Hashtbl.replace position v i) order;
          List.for_all
            (fun (src, dst, ()) -> Hashtbl.find position src < Hashtbl.find position dst)
            (G.edges g))

(* Property: longest_path with unit weights equals the depth computed by
   brute-force DFS. *)
let prop_longest_path_matches_dfs =
  QCheck.Test.make ~count:100 ~name:"longest path equals brute-force depth"
    (QCheck.make random_dag_gen) (fun g ->
      let rec depth v =
        List.fold_left (fun acc (s, ()) -> Float.max acc (1. +. depth s)) 1. (G.succs g v)
      in
      let brute = List.fold_left (fun acc v -> Float.max acc (depth v)) 0. (G.sources g) in
      let _, total = G.longest_path g ~weight:(fun _ -> 1.) in
      total = brute)

let suite =
  [
    Alcotest.test_case "degrees, sources, sinks" `Quick test_degrees;
    Alcotest.test_case "topological sort of diamond" `Quick test_topo;
    Alcotest.test_case "cycle detection" `Quick test_cycle_detection;
    Alcotest.test_case "self loop" `Quick test_self_loop;
    Alcotest.test_case "vertex and edge removal" `Quick test_remove;
    Alcotest.test_case "reachability and transpose" `Quick test_reachability;
    Alcotest.test_case "weighted longest path" `Quick test_longest_path;
    Alcotest.test_case "edge relabeling keeps one edge" `Quick test_edge_relabel;
    QCheck_alcotest.to_alcotest prop_topo_respects_edges;
    QCheck_alcotest.to_alcotest prop_longest_path_matches_dfs;
  ]
