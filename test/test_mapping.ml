open Sf_ir
module Partition = Sf_mapping.Partition
module Smi = Sf_smi.Smi
module Device = Sf_models.Device
module Iterative = Sf_kernels.Iterative
module Engine = Sf_sim.Engine

let dev = Device.stratix10

let test_single_device_fits () =
  let p = Fixtures.kitchen_sink () in
  match Partition.greedy ~device:dev p with
  | Error m -> Alcotest.fail (Sf_support.Diag.to_string m)
  | Ok pt ->
      Alcotest.(check int) "one device" 1 pt.Partition.num_devices;
      Alcotest.(check int) "no cross edges" 0 (List.length pt.Partition.cross_edges);
      (match Partition.validate p pt with
      | Ok () -> ()
      | Error errs -> Alcotest.fail (String.concat "; " errs))

let test_long_chain_splits () =
  (* A chain too big for one device spreads over several, splitting at
     consecutive boundaries (Sec. VIII-C). *)
  let p = Iterative.chain ~shape:[ 256; 64; 64 ] Iterative.Jacobi3d ~length:300 in
  match Partition.greedy ~device:dev p with
  | Error m -> Alcotest.fail (Sf_support.Diag.to_string m)
  | Ok pt ->
      Alcotest.(check bool)
        (Printf.sprintf "%d devices > 1" pt.Partition.num_devices)
        true
        (pt.Partition.num_devices > 1);
      (match Partition.validate p pt with
      | Ok () -> ()
      | Error errs -> Alcotest.fail (String.concat "; " errs));
      (* A linear chain crosses each device boundary exactly once. *)
      Alcotest.(check int) "one cross edge per boundary"
        (pt.Partition.num_devices - 1)
        (List.length pt.Partition.cross_edges);
      (* Topological packing keeps devices monotone along the chain. *)
      List.iter
        (fun ((_, _), (d1, d2)) ->
          Alcotest.(check int) "consecutive devices" 1 (d2 - d1))
        pt.Partition.cross_edges;
      Alcotest.(check bool) "network feasible at W=1" true
        (Partition.network_feasible p pt ~device:dev)

let test_input_replication () =
  (* Fig. 5: an input read on two devices is replicated to both. *)
  let p = Fixtures.chain ~shape:[ 6; 10 ] ~n:2 () in
  (* Force the two stages apart with a manual partition. *)
  let pt =
    {
      Partition.num_devices = 2;
      device_of = [ ("f1", 0); ("f2", 1) ];
      replicated_inputs = [ ("f0", [ 0 ]) ];
      cross_edges = [ (("f1", "f2"), (0, 1)) ];
      per_device_usage = [];
    }
  in
  (match Partition.validate p pt with
  | Ok () -> ()
  | Error errs -> Alcotest.fail (String.concat ";" errs));
  (* A program where both devices read the same input. *)
  let b = Builder.create ~name:"shared" ~shape:[ 4; 8 ] () in
  Builder.input b "a";
  Builder.stencil b "s1" Builder.E.(acc "a" [ 0; 0 ] +% c 1.);
  Builder.stencil b "s2" Builder.E.(acc "a" [ 0; 0 ] +% acc "s1" [ 0; 0 ]);
  Builder.output b "s2";
  let shared = Builder.finish b in
  let manual =
    {
      Partition.num_devices = 2;
      device_of = [ ("s1", 0); ("s2", 1) ];
      replicated_inputs = [ ("a", [ 0; 1 ]) ];
      cross_edges = [ (("s1", "s2"), (0, 1)) ];
      per_device_usage = [];
    }
  in
  (match Partition.validate shared manual with
  | Ok () -> ()
  | Error errs -> Alcotest.fail (String.concat ";" errs));
  (* Missing replication is caught. *)
  let broken = { manual with Partition.replicated_inputs = [ ("a", [ 0 ]) ] } in
  match Partition.validate shared broken with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "missing replication must be reported"

let test_partitioned_simulation_validates () =
  (* End to end: greedy partition of a moderately long chain, simulated
     across devices with networking, still matches the reference. *)
  let p = Fixtures.chain ~shape:[ 6; 12 ] ~n:6 () in
  (* Force a split by pretending each stage is huge: manual placement. *)
  let placement name =
    match name with
    | "f1" | "f2" -> 0
    | "f3" | "f4" -> 1
    | _ -> 2
  in
  let config =
    Engine.Config.make ~latency:Sf_analysis.Latency.cheap
      ~network:(Engine.Config.network ~net_latency_cycles:8 ())
      ()
  in
  match Engine.run_and_validate ~config ~placement p with
  | Ok stats -> Alcotest.(check bool) "network used" true (stats.Engine.network_bytes > 0)
  | Error m -> Alcotest.fail (Sf_support.Diag.to_string m)

let test_hop_demand () =
  let p = Sf_analysis.Vectorize.apply (Fixtures.chain ~shape:[ 6; 12 ] ~n:2 ()) 4 in
  let pt =
    {
      Partition.num_devices = 2;
      device_of = [ ("f1", 0); ("f2", 1) ];
      replicated_inputs = [ ("f0", [ 0 ]) ];
      cross_edges = [ (("f1", "f2"), (0, 1)) ];
      per_device_usage = [];
    }
  in
  (* W=4 floats crossing: 16 B/cycle. *)
  Alcotest.(check (float 1e-9)) "demand" 16. (Partition.hop_demand_bytes_per_cycle p pt ~hop:0);
  Alcotest.(check bool) "feasible on two 40 Gbit links" true
    (Partition.network_feasible p pt ~device:dev)

let test_smi_split_reassemble () =
  let words = List.init 17 Fun.id in
  let sub = Smi.split_words words ~ways:3 in
  Alcotest.(check int) "three substreams" 3 (List.length sub);
  Alcotest.(check (list int)) "reassembles in order" words (Smi.reassemble sub)

let prop_smi_roundtrip =
  QCheck.Test.make ~count:200 ~name:"smi split/reassemble roundtrip"
    QCheck.(pair (list int) (int_range 1 6))
    (fun (words, ways) -> Smi.reassemble (Smi.split_words words ~ways) = words)

let test_smi_channels () =
  let topo = Smi.chain ~devices:4 ~links_per_hop:2 in
  Alcotest.(check int) "hops" 2 (Smi.hops topo ~src:1 ~dst:3);
  let ch =
    { Smi.src_rank = 0; dst_rank = 1; port = 0; element_bytes = 4; vector_width = 4; depth = 9 }
  in
  (match Smi.validate_channel topo ch with Ok () -> () | Error m -> Alcotest.fail m);
  (match Smi.validate_channel topo { ch with Smi.dst_rank = 0 } with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "same-rank channel must be rejected");
  let subs = Smi.split topo ch in
  Alcotest.(check int) "split into links" 2 (List.length subs);
  Alcotest.(check bool) "ports distinct" true
    (List.length (List.sort_uniq compare (List.map (fun c -> c.Smi.port) subs)) = 2)

let test_smi_max_width_matches_paper () =
  (* Sec. VIII-C: with two 40 Gbit/s links at ~300 MHz, one f32 stream can
     vectorize to W=4 but not W=8 across devices — the network bound that
     capped the distributed experiments. *)
  let topo = Smi.chain ~devices:8 ~links_per_hop:2 in
  let w = Smi.max_vector_width topo dev ~element_bytes:4 ~streams_per_hop:1 in
  Alcotest.(check int) "W=4 sustainable, W=8 not" 4 w

let suite =
  [
    Alcotest.test_case "small program fits one device" `Quick test_single_device_fits;
    Alcotest.test_case "long chains split across devices" `Quick test_long_chain_splits;
    Alcotest.test_case "input replication (fig 5)" `Quick test_input_replication;
    Alcotest.test_case "partitioned simulation validates" `Quick
      test_partitioned_simulation_validates;
    Alcotest.test_case "hop bandwidth demand" `Quick test_hop_demand;
    Alcotest.test_case "smi stream splitting" `Quick test_smi_split_reassemble;
    Alcotest.test_case "smi channel validation and split" `Quick test_smi_channels;
    Alcotest.test_case "smi caps distributed W at 4 (sec 8C)" `Quick
      test_smi_max_width_matches_paper;
    QCheck_alcotest.to_alcotest prop_smi_roundtrip;
  ]
