module Channel = Sf_sim.Channel
module Controller = Sf_sim.Controller
module Link = Sf_sim.Link
module Word = Sf_sim.Word

let word v =
  let w = Word.create 1 in
  w.Word.values.(0) <- v;
  w

let test_channel_fifo_order () =
  let c = Channel.create ~name:"c" ~capacity:3 in
  Alcotest.(check bool) "empty" true (Channel.is_empty c);
  Channel.push c (word 1.);
  Channel.push c (word 2.);
  Channel.push c (word 3.);
  Alcotest.(check bool) "full" true (Channel.is_full c);
  Alcotest.(check (float 0.)) "fifo 1" 1. (Channel.pop c).Word.values.(0);
  Channel.push c (word 4.);
  Alcotest.(check (float 0.)) "fifo 2" 2. (Channel.pop c).Word.values.(0);
  Alcotest.(check (float 0.)) "fifo 3" 3. (Channel.pop c).Word.values.(0);
  Alcotest.(check (float 0.)) "fifo 4" 4. (Channel.pop c).Word.values.(0);
  Alcotest.(check int) "total pushed" 4 (Channel.total_pushed c);
  Alcotest.(check int) "high water" 3 (Channel.high_water c)

let test_channel_overflow_underflow () =
  let c = Channel.create ~name:"c" ~capacity:1 in
  (match Channel.pop c with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "pop of empty must fail");
  Channel.push c (word 0.);
  match Channel.push c (word 1.) with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "push to full must fail"

let test_channel_capacity_positive () =
  match Channel.create ~name:"bad" ~capacity:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero capacity must be rejected"

let prop_channel_queue_model =
  (* The channel behaves exactly like a bounded queue. *)
  QCheck.Test.make ~count:200 ~name:"channel equals a bounded FIFO"
    QCheck.(pair (int_range 1 8) (small_list (QCheck.oneofl [ `Push; `Pop ])))
    (fun (capacity, ops) ->
      let c = Channel.create ~name:"q" ~capacity in
      let model = Queue.create () in
      let counter = ref 0. in
      List.for_all
        (fun op ->
          match op with
          | `Push ->
              if Queue.length model < capacity then begin
                counter := !counter +. 1.;
                Queue.push !counter model;
                Channel.push c (word !counter);
                true
              end
              else Channel.is_full c
          | `Pop ->
              if Queue.length model > 0 then begin
                let expected = Queue.pop model in
                (Channel.pop c).Word.values.(0) = expected
              end
              else Channel.is_empty c)
        ops
      && Channel.occupancy c = Queue.length model)

let prop_channel_soa_model =
  (* The zero-allocation slot API and the Word API agree with a model
     queue over random interleavings, including invalid ("shrink") lanes,
     the high-water mark, and the wake-hook firing counts. *)
  QCheck.Test.make ~count:200 ~name:"SoA slot API equals a bounded FIFO"
    QCheck.(
      triple (int_range 1 6) (int_range 1 4)
        (small_list (oneofl [ `SlotPush; `WordPush; `SlotDrop; `WordPop; `Peek ])))
    (fun (capacity, width, ops) ->
      let c = Channel.create_vec ~width ~name:"q" ~capacity in
      let pushes = ref 0 and pops = ref 0 in
      Channel.set_hooks c ~on_push:(fun () -> incr pushes) ~on_pop:(fun () -> incr pops);
      let model : (float array * bool array) Queue.t = Queue.create () in
      let counter = ref 0 in
      let hw = ref 0 in
      let fresh () =
        incr counter;
        let base = 10 * !counter in
        ( Array.init width (fun l -> float_of_int (base + l)),
          (* Sprinkle invalid lanes the way shrink stencils do. *)
          Array.init width (fun l -> (base + l) mod 3 <> 0) )
      in
      let agree (values, valid) w =
        Array.for_all2 ( = ) values w.Word.values && Array.for_all2 ( = ) valid w.Word.valid
      in
      List.for_all
        (fun op ->
          match op with
          | (`SlotPush | `WordPush) when Queue.length model < capacity ->
              let values, valid = fresh () in
              Queue.push (values, valid) model;
              if !hw < Queue.length model then hw := Queue.length model;
              (match op with
              | `SlotPush ->
                  let base = Channel.Unsafe.push_slot c in
                  Array.blit values 0 (Channel.Unsafe.buf_values c) base width;
                  Array.blit valid 0 (Channel.Unsafe.buf_valid c) base width
              | _ ->
                  let w = Word.create width in
                  Array.blit values 0 w.Word.values 0 width;
                  Array.blit valid 0 w.Word.valid 0 width;
                  Channel.push c w);
              true
          | `SlotPush | `WordPush -> Channel.is_full c
          | `SlotDrop when Queue.length model > 0 ->
              let values, valid = Queue.pop model in
              let base = Channel.Unsafe.front_slot c in
              let ok = ref true in
              for l = 0 to width - 1 do
                if (Channel.Unsafe.buf_values c).(base + l) <> values.(l) then ok := false;
                if (Channel.Unsafe.buf_valid c).(base + l) <> valid.(l) then ok := false
              done;
              Channel.drop c;
              !ok
          | `WordPop when Queue.length model > 0 -> agree (Queue.pop model) (Channel.pop c)
          | `SlotDrop | `WordPop -> Channel.is_empty c
          | `Peek -> (
              match (Channel.peek c, Queue.peek_opt model) with
              | None, None -> true
              | Some w, Some front -> agree front w
              | _ -> false))
        ops
      && Channel.occupancy c = Queue.length model
      && Channel.high_water c = !hw
      && !pushes = !counter
      && !pops = !counter - Queue.length model)

let test_controller_budget () =
  let ctrl = Controller.create ~bytes_per_cycle:8. in
  Controller.begin_cycle ctrl;
  Alcotest.(check bool) "grant within budget" true (Controller.request ctrl 8);
  Alcotest.(check bool) "deny beyond budget" false (Controller.request ctrl 1);
  Controller.begin_cycle ctrl;
  Alcotest.(check bool) "fresh budget" true (Controller.request ctrl 4);
  Alcotest.(check bool) "partial remains" true (Controller.request ctrl 4);
  Alcotest.(check int) "accounting" 16 (Controller.bytes_granted ctrl)

let test_controller_fractional_rates () =
  (* With 0.5 B/cycle, a 1-byte request succeeds every other cycle. *)
  let ctrl = Controller.create ~bytes_per_cycle:0.5 in
  let grants = ref 0 in
  for _ = 1 to 100 do
    Controller.begin_cycle ctrl;
    if Controller.request ctrl 1 then incr grants
  done;
  Alcotest.(check int) "half rate" 50 !grants

let test_controller_no_banking () =
  (* Idle cycles don't bank unbounded bandwidth for later bursts. *)
  let ctrl = Controller.create ~bytes_per_cycle:4. in
  for _ = 1 to 10 do
    Controller.begin_cycle ctrl
  done;
  Alcotest.(check bool) "burst capped" false (Controller.request ctrl 100)

let test_controller_unlimited () =
  let ctrl = Controller.unlimited () in
  Controller.begin_cycle ctrl;
  Alcotest.(check bool) "always grants" true (Controller.request ctrl max_int)

let test_link_latency_and_order () =
  let src = Channel.create ~name:"src" ~capacity:8 in
  let dst = Channel.create ~name:"dst" ~capacity:8 in
  let link = Link.create ~name:"l" ~bytes_per_cycle:4. ~latency_cycles:3 () in
  Link.add_port link ~src ~dst ~word_bytes:4;
  Channel.push src (word 1.);
  Channel.push src (word 2.);
  (* Word 1 injected at cycle 0, delivered no earlier than cycle 3. *)
  for now = 0 to 2 do
    ignore (Link.cycle link ~now)
  done;
  Alcotest.(check bool) "nothing before latency" true (Channel.is_empty dst);
  ignore (Link.cycle link ~now:3);
  Alcotest.(check (float 0.)) "word 1 arrives" 1. (Channel.pop dst).Word.values.(0);
  ignore (Link.cycle link ~now:4);
  Alcotest.(check (float 0.)) "word 2 follows in order" 2. (Channel.pop dst).Word.values.(0);
  Alcotest.(check bool) "idle after drain" true (Link.is_idle link);
  Alcotest.(check int) "bytes counted" 8 (Link.bytes_transferred link)

let test_link_bandwidth_shared () =
  (* Two ports share one link's bandwidth: at 4 B/cycle and 4 B words,
     only one word total is injected per cycle. *)
  let mk name = Channel.create ~name ~capacity:8 in
  let s1 = mk "s1" and d1 = mk "d1" and s2 = mk "s2" and d2 = mk "d2" in
  let link = Link.create ~name:"l" ~bytes_per_cycle:4. ~latency_cycles:0 () in
  Link.add_port link ~src:s1 ~dst:d1 ~word_bytes:4;
  Link.add_port link ~src:s2 ~dst:d2 ~word_bytes:4;
  for i = 1 to 4 do
    Channel.push s1 (word (float_of_int i));
    Channel.push s2 (word (float_of_int (10 * i)))
  done;
  for now = 0 to 20 do
    ignore (Link.cycle link ~now)
  done;
  Alcotest.(check int) "all delivered eventually" 4 (Channel.occupancy d1);
  Alcotest.(check int) "both ports served" 4 (Channel.occupancy d2);
  Alcotest.(check int) "total bytes" 32 (Link.bytes_transferred link)

let test_link_backpressure () =
  (* A full destination blocks delivery but not other ports. *)
  let src = Channel.create ~name:"src" ~capacity:8 in
  let dst = Channel.create ~name:"dst" ~capacity:1 in
  let link = Link.create ~name:"l" ~bytes_per_cycle:infinity ~latency_cycles:0 () in
  Link.add_port link ~src ~dst ~word_bytes:4;
  Channel.push src (word 1.);
  Channel.push src (word 2.);
  for now = 0 to 5 do
    ignore (Link.cycle link ~now)
  done;
  Alcotest.(check int) "only capacity delivered" 1 (Channel.occupancy dst);
  ignore (Channel.pop dst);
  for now = 6 to 8 do
    ignore (Link.cycle link ~now)
  done;
  Alcotest.(check (float 0.)) "second arrives after drain" 2. (Channel.pop dst).Word.values.(0)

let test_word_copy_independent () =
  let w = Word.create 4 in
  w.Word.values.(2) <- 7.;
  w.Word.valid.(1) <- false;
  let copy = Word.copy w in
  copy.Word.values.(2) <- 0.;
  copy.Word.valid.(1) <- true;
  Alcotest.(check (float 0.)) "values independent" 7. w.Word.values.(2);
  Alcotest.(check bool) "valid independent" false w.Word.valid.(1);
  Alcotest.(check int) "width" 4 (Word.width w)

let suite =
  [
    Alcotest.test_case "channel FIFO order and stats" `Quick test_channel_fifo_order;
    Alcotest.test_case "channel overflow/underflow" `Quick test_channel_overflow_underflow;
    Alcotest.test_case "channel capacity validation" `Quick test_channel_capacity_positive;
    QCheck_alcotest.to_alcotest prop_channel_queue_model;
    QCheck_alcotest.to_alcotest prop_channel_soa_model;
    Alcotest.test_case "controller budget accounting" `Quick test_controller_budget;
    Alcotest.test_case "controller fractional rates" `Quick test_controller_fractional_rates;
    Alcotest.test_case "controller does not bank bandwidth" `Quick test_controller_no_banking;
    Alcotest.test_case "controller unlimited mode" `Quick test_controller_unlimited;
    Alcotest.test_case "link latency preserves order" `Quick test_link_latency_and_order;
    Alcotest.test_case "link bandwidth is shared" `Quick test_link_bandwidth_shared;
    Alcotest.test_case "link backpressure" `Quick test_link_backpressure;
    Alcotest.test_case "word copies are independent" `Quick test_word_copy_independent;
  ]
