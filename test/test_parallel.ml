(* Cross-engine parity for the domain-parallel simulator: every
   observable of a parallel run — cycle count, outputs, stall totals,
   high-water marks, byte/network accounting, deadlock diagnoses — must
   be bit-identical to the sequential engine on the same placement and
   inputs ([Test_sim_parity.signature] fingerprints all of them). Also
   pins the [Parallel.decide] policy: when parallel execution runs, when
   it degrades to the sequential path, and when the configuration is
   rejected outright (SF0704). *)
module Engine = Sf_sim.Engine
module Parallel = Sf_sim.Parallel
module Telemetry = Sf_sim.Telemetry
module Interp = Sf_reference.Interp
module Diag = Sf_support.Diag
module Program = Sf_ir.Program

let cheap = Test_sim_parity.cheap_config

let parallelize config =
  {
    config with
    Engine.Config.parallelism = Engine.Config.parallelism ~mode:`Domains_per_device ();
  }

(* The three multi-device scenarios of the engine parity fixture, under
   the same configs, so the parallel engine is pinned to the exact seed
   signatures the sequential engine is pinned to. *)
let chain_config =
  { cheap with Engine.Config.network = Engine.Config.network ~net_latency_cycles:16 () }

let chain_placement = function "f1" | "f2" -> 0 | _ -> 1

let net_capped_config =
  {
    cheap with
    Engine.Config.network =
      Engine.Config.network ~net_bytes_per_cycle:2. ~net_latency_cycles:4 ();
  }

let deadlock_config =
  {
    cheap with
    Engine.Config.override_edge_buffers = [ (("a", "c"), 0) ];
    Engine.Config.channel_slack = 2;
    Engine.Config.safety = Engine.Config.safety ~deadlock_window:256 ();
  }

let check_parity ?(config = cheap) ~placement name p =
  let inputs = Interp.random_inputs p in
  let seq = Engine.run_exn ~config ~placement ~inputs p in
  let par = Parallel.run_exn ~config:(parallelize config) ~placement ~inputs p in
  Alcotest.(check string)
    (name ^ ": parallel matches sequential")
    (Test_sim_parity.signature seq)
    (Test_sim_parity.signature par)

let test_chain_parity () =
  check_parity ~config:chain_config ~placement:chain_placement "multi-device-chain"
    (Fixtures.chain ~shape:[ 6; 10 ] ~n:4 ())

(* Finite link bandwidth on a forward-only cut: the per-cycle grant
   denials at the domain boundary must land on the same cycles as in the
   sequential engine (visible through stall totals and cycle count). *)
let test_net_capped_parity () =
  check_parity ~config:net_capped_config
    ~placement:(function "f2" -> 1 | _ -> 0)
    "net-capped-chain"
    (Fixtures.chain ~shape:[ 8; 24 ] ~n:2 ())

(* An under-buffered diamond split across two devices: the parallel run
   goes stuck, re-runs sequentially, and must reproduce the sequential
   engine's SF0701 diagnosis verbatim (blocked set and circular wait). *)
let test_deadlock_parity () =
  check_parity ~config:deadlock_config
    ~placement:(function "a" | "b" -> 0 | _ -> 1)
    "deadlock-diamond-2dev"
    (Fixtures.diamond ~shape:[ 8; 16 ] ~span:5 ())

(* The merged per-device counter registries must serialize to the exact
   same counters document the sequential registry produces. *)
let test_counters_reconcile () =
  let p = Fixtures.chain ~shape:[ 6; 10 ] ~n:4 () in
  let inputs = Interp.random_inputs p in
  let stats = function
    | Engine.Completed s -> s
    | Engine.Deadlocked _ -> Alcotest.fail "unexpected deadlock"
  in
  let seq = stats (Engine.run_exn ~config:chain_config ~placement:chain_placement ~inputs p) in
  let par =
    stats
      (Parallel.run_exn ~config:(parallelize chain_config) ~placement:chain_placement ~inputs p)
  in
  Alcotest.(check string)
    "counters JSON identical"
    (Sf_support.Json.to_string (Telemetry.counters_json seq.Engine.telemetry))
    (Sf_support.Json.to_string (Telemetry.counters_json par.Engine.telemetry))

(* ------------------------------------------------------------------ *)
(* decide: the policy surface.                                         *)
(* ------------------------------------------------------------------ *)

let two_dev = function "f1" -> 0 | _ -> 1

let test_decide_parallel () =
  let p = Fixtures.chain ~n:2 () in
  match Parallel.decide ~config:(parallelize cheap) ~placement:two_dev p with
  | `Parallel n -> Alcotest.(check int) "two domains" 2 n
  | `Degrade r -> Alcotest.failf "unexpected degrade: %s" r
  | `Reject d -> Alcotest.failf "unexpected reject: %s" d.Diag.message

let test_decide_sequential_mode () =
  let p = Fixtures.chain ~n:2 () in
  match Parallel.decide ~config:cheap ~placement:two_dev p with
  | `Degrade _ -> ()
  | `Parallel _ | `Reject _ -> Alcotest.fail "sequential mode must degrade"

(* All stencils on one device: no domains to spawn, no lookahead needed —
   the parallel path must fall through to the sequential engine. *)
let test_decide_single_device () =
  let p = Fixtures.chain ~n:2 () in
  match Parallel.decide ~config:(parallelize cheap) ~placement:(fun _ -> 0) p with
  | `Degrade _ -> ()
  | `Parallel _ | `Reject _ -> Alcotest.fail "single-device placement must degrade"

(* Opposite-direction traffic between one device pair sharing a finite
   link budget: per-direction controllers could not reproduce the
   sequential arbitration, so the decision must be to degrade. *)
let test_decide_bidirectional_capped () =
  let p = Fixtures.diamond ~span:5 () in
  let config =
    parallelize
      {
        cheap with
        Engine.Config.network =
          Engine.Config.network ~net_bytes_per_cycle:8. ~net_latency_cycles:8 ();
      }
  in
  let placement = function "b" -> 1 | _ -> 0 in
  (match Parallel.decide ~config ~placement p with
  | `Degrade _ -> ()
  | `Parallel _ | `Reject _ -> Alcotest.fail "bidirectional capped pair must degrade");
  (* ... and the degraded run still matches the sequential engine. *)
  check_parity
    ~config:
      {
        cheap with
        Engine.Config.network =
          Engine.Config.network ~net_bytes_per_cycle:8. ~net_latency_cycles:8 ();
      }
    ~placement "bidirectional-capped" p

(* Zero-latency links leave no lookahead: the configuration is invalid
   for parallel execution and must be rejected (SF0704), not silently
   degraded — run surfaces the Diag, run_exn raises. *)
let test_zero_latency_rejected () =
  let p = Fixtures.chain ~n:2 () in
  let config =
    parallelize
      { cheap with Engine.Config.network = Engine.Config.network ~net_latency_cycles:0 () }
  in
  (match Parallel.decide ~config ~placement:two_dev p with
  | `Reject d -> Alcotest.(check string) "code" Diag.Code.sim_config d.Diag.code
  | `Parallel _ | `Degrade _ -> Alcotest.fail "zero-latency links must be rejected");
  (match Parallel.run ~config ~placement:two_dev p with
  | Error d -> Alcotest.(check string) "run code" Diag.Code.sim_config d.Diag.code
  | Ok _ -> Alcotest.fail "run must fail on zero-latency links");
  match Parallel.run_exn ~config ~placement:two_dev p with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "run_exn must raise on zero-latency links"

(* ------------------------------------------------------------------ *)
(* Property: parity holds for random programs and random placements.   *)
(* ------------------------------------------------------------------ *)

let prop_random_parity =
  QCheck.Test.make ~count:10 ~name:"random programs: parallel equals sequential"
    QCheck.(pair Program_gen.arbitrary_program (int_range 2 4))
    (fun (p, devices) ->
      (* Deterministic pseudo-random placement over [devices] devices;
         decide may still degrade (e.g. bidirectional cuts) — parity must
         hold either way. *)
      let placement name = Hashtbl.hash name mod devices in
      let config =
        { cheap with Engine.Config.network = Engine.Config.network ~net_latency_cycles:8 () }
      in
      let inputs = Interp.random_inputs p in
      let seq = Engine.run_exn ~config ~placement ~inputs p in
      let par = Parallel.run_exn ~config:(parallelize config) ~placement ~inputs p in
      Test_sim_parity.signature seq = Test_sim_parity.signature par)

let suite =
  [
    Alcotest.test_case "multi-device chain parity" `Quick test_chain_parity;
    Alcotest.test_case "net-capped boundary parity" `Quick test_net_capped_parity;
    Alcotest.test_case "cross-device deadlock parity" `Quick test_deadlock_parity;
    Alcotest.test_case "telemetry counters reconcile" `Quick test_counters_reconcile;
    Alcotest.test_case "decide: multi-device goes parallel" `Quick test_decide_parallel;
    Alcotest.test_case "decide: sequential mode degrades" `Quick test_decide_sequential_mode;
    Alcotest.test_case "decide: single device degrades" `Quick test_decide_single_device;
    Alcotest.test_case "decide: bidirectional capped pair degrades" `Quick
      test_decide_bidirectional_capped;
    Alcotest.test_case "zero-latency links rejected (SF0704)" `Quick test_zero_latency_rejected;
    QCheck_alcotest.to_alcotest prop_random_parity;
  ]
