open Sf_ir
module Util = Sf_support.Util

let test_range () =
  Alcotest.(check (list int)) "range 4" [ 0; 1; 2; 3 ] (Util.range 4);
  Alcotest.(check (list int)) "range 0" [] (Util.range 0);
  Alcotest.(check (list int)) "range negative" [] (Util.range (-3))

let test_ceil_div () =
  Alcotest.(check int) "exact" 3 (Util.ceil_div 9 3);
  Alcotest.(check int) "round up" 4 (Util.ceil_div 10 3);
  Alcotest.(check int) "zero" 0 (Util.ceil_div 0 5);
  match Util.ceil_div 1 0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero divisor must be rejected"

let test_float_close () =
  Alcotest.(check bool) "equal" true (Util.float_close 1.0 1.0);
  Alcotest.(check bool) "relative" true (Util.float_close ~rel:1e-3 1000. 1000.5);
  Alcotest.(check bool) "not close" false (Util.float_close 1.0 1.1)

let test_human_formats () =
  Alcotest.(check string) "gops" "264.00 GOp/s" (Util.human_rate 264e9);
  Alcotest.(check string) "tops" "4.18 TOp/s" (Util.human_rate 4.18e12);
  Alcotest.(check string) "gbs" "36.4 GB/s" (Util.human_bytes_rate 36.4e9);
  Alcotest.(check string) "us" "118 us" (Util.human_time 118e-6);
  Alcotest.(check string) "ms" "5.27 ms" (Util.human_time 5.27e-3);
  Alcotest.(check string) "s" "2.00 s" (Util.human_time 2.)

let test_clamp_and_max () =
  Alcotest.(check int) "clamp low" 2 (Util.clamp ~lo:2 ~hi:5 1);
  Alcotest.(check int) "clamp high" 5 (Util.clamp ~lo:2 ~hi:5 9);
  Alcotest.(check int) "clamp mid" 3 (Util.clamp ~lo:2 ~hi:5 3);
  Alcotest.(check int) "max list" 9 (Util.max_int_list [ 3; 9; 1 ]);
  match Util.max_int_list [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty max must be rejected"

let test_dtype () =
  Alcotest.(check int) "f32 size" 4 (Dtype.size_bytes Dtype.F32);
  Alcotest.(check int) "f64 size" 8 (Dtype.size_bytes Dtype.F64);
  Alcotest.(check (option bool)) "alias parse" (Some true)
    (Option.map Dtype.is_float (Dtype.of_string "double"));
  Alcotest.(check (option bool)) "int parse" (Some false)
    (Option.map Dtype.is_float (Dtype.of_string "int32"));
  Alcotest.(check bool) "unknown rejected" true (Dtype.of_string "quad" = None);
  List.iter
    (fun d ->
      Alcotest.(check bool) "name roundtrip" true (Dtype.of_string (Dtype.name d) = Some d))
    [ Dtype.F32; Dtype.F64; Dtype.I32; Dtype.I64 ]

let test_boundary () =
  Alcotest.(check bool) "constant equal" true
    (Boundary.equal (Boundary.Constant 1.) (Boundary.Constant 1.));
  Alcotest.(check bool) "constant differs" false
    (Boundary.equal (Boundary.Constant 1.) (Boundary.Constant 2.));
  Alcotest.(check bool) "copy equal" true (Boundary.equal Boundary.Copy Boundary.Copy);
  Alcotest.(check bool) "mixed differ" false
    (Boundary.equal Boundary.Copy (Boundary.Constant 0.));
  Alcotest.(check string) "default is constant zero" "constant(0)"
    (Boundary.to_string Boundary.default)

let test_field () =
  let f = Field.make ~axes:[ 1 ] ~name:"row" ~full_rank:3 () in
  Alcotest.(check int) "rank" 1 (Field.rank f);
  Alcotest.(check bool) "not full" false (Field.is_full_rank f ~rank:3);
  Alcotest.(check (list int)) "extent" [ 7 ] (Field.extent f ~shape:[ 5; 7; 9 ]);
  Alcotest.(check int) "elements" 7 (Field.num_elements f ~shape:[ 5; 7; 9 ]);
  Alcotest.(check int) "bytes" 28 (Field.size_bytes f ~shape:[ 5; 7; 9 ]);
  let scalar = Field.make ~axes:[] ~name:"s" ~full_rank:3 () in
  Alcotest.(check bool) "scalar" true (Field.is_scalar scalar);
  Alcotest.(check int) "scalar elements" 1 (Field.num_elements scalar ~shape:[ 5; 7; 9 ]);
  (match Field.validate (Field.make ~axes:[ 1; 1 ] ~name:"dup" ~full_rank:3 ()) ~full_rank:3 with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "duplicate axes rejected");
  match Field.validate (Field.make ~axes:[ 3 ] ~name:"oob" ~full_rank:3 ()) ~full_rank:3 with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "out-of-range axis rejected"

let test_tensor_slice () =
  let module Tensor = Sf_reference.Tensor in
  let t =
    Tensor.of_fn [ 4; 5 ] (function [ i; j ] -> float_of_int ((10 * i) + j) | _ -> 0.)
  in
  let s = Tensor.slice t ~origin:[ 1; 2 ] ~extent:[ 2; 3 ] in
  Alcotest.(check (float 0.)) "corner" 12. (Tensor.get s [ 0; 0 ]);
  Alcotest.(check (float 0.)) "other corner" 24. (Tensor.get s [ 1; 2 ]);
  (match Tensor.slice t ~origin:[ 3; 3 ] ~extent:[ 2; 2 ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "out-of-bounds slice rejected");
  let dst = Tensor.create [ 4; 5 ] in
  Tensor.blit_region ~src:t ~src_origin:[ 0; 0 ] ~dst ~dst_origin:[ 2; 2 ] ~extent:[ 2; 3 ];
  Alcotest.(check (float 0.)) "blitted" 1. (Tensor.get dst [ 2; 3 ])

let suite =
  [
    Alcotest.test_case "range" `Quick test_range;
    Alcotest.test_case "ceiling division" `Quick test_ceil_div;
    Alcotest.test_case "float comparison" `Quick test_float_close;
    Alcotest.test_case "human-readable formats" `Quick test_human_formats;
    Alcotest.test_case "clamp and max" `Quick test_clamp_and_max;
    Alcotest.test_case "dtypes" `Quick test_dtype;
    Alcotest.test_case "boundary conditions" `Quick test_boundary;
    Alcotest.test_case "fields" `Quick test_field;
    Alcotest.test_case "tensor slicing" `Quick test_tensor_slice;
  ]
