open Sf_ir
module Fusion = Sf_sdfg.Fusion
module Interp = Sf_reference.Interp
module Tensor = Sf_reference.Tensor
module Delay_buffer = Sf_analysis.Delay_buffer
module E = Builder.E

(* Compare two programs on cells at least [radius] away from every face
   of the domain (fusion changes boundary predication; interiors agree
   exactly — Sec. V-B). *)
let interior_equal ~radius p q =
  let inputs = Interp.random_inputs p in
  let rp = Interp.run p ~inputs and rq = Interp.run q ~inputs in
  let shape = p.Program.shape in
  List.for_all
    (fun (name, (r : Interp.result)) ->
      match List.assoc_opt name rq with
      | None -> false
      | Some r' ->
          let ok = ref true in
          let rec scan prefix = function
            | [] ->
                let idx = List.rev prefix in
                if
                  List.for_all2
                    (fun i e -> i >= radius && i < e - radius)
                    idx shape
                then begin
                  let a = Tensor.get r.Interp.tensor idx
                  and b = Tensor.get r'.Interp.tensor idx in
                  if Float.abs (a -. b) > 1e-9 *. Float.max 1. (Float.abs a) then ok := false
                end
            | e :: rest ->
                for i = 0 to e - 1 do
                  scan (i :: prefix) rest
                done
          in
          scan [] shape;
          !ok)
    rp

let test_preconditions () =
  let diamond = Fixtures.diamond () in
  (* a feeds both b and c: container degree > 2. *)
  (match Fusion.can_fuse diamond ~producer:"a" ~consumer:"b" with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "multi-consumer producer must not fuse");
  (* b -> c is legal. *)
  (match Fusion.can_fuse diamond ~producer:"b" ~consumer:"c" with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  (* Output stencils must not fuse away. *)
  let fork = Fixtures.fork () in
  (match Fusion.can_fuse fork ~producer:"left" ~consumer:"join" with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "memory-written producer must not fuse");
  (* Differing boundary conditions block fusion. *)
  let b = Builder.create ~name:"bc" ~shape:[ 4; 8 ] () in
  Builder.input b "x";
  Builder.stencil b ~boundary:[ ("x", Boundary.Copy) ] "s" E.(acc "x" [ 0; 1 ] +% acc "x" [ 0; -1 ]);
  Builder.stencil b
    ~boundary:[ ("s", Boundary.Constant 0.); ("x", Boundary.Constant 0.) ]
    "t"
    E.(acc "s" [ 0; 1 ] +% acc "x" [ 0; 0 ]);
  Builder.output b "t";
  let p = Builder.finish b in
  match Fusion.can_fuse p ~producer:"s" ~consumer:"t" with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "differing boundary conditions must block fusion"

let test_fuse_chain_pair () =
  let p = Fixtures.chain ~shape:[ 8; 12 ] ~n:2 () in
  let fused = Fusion.fuse_pair p ~producer:"f1" ~consumer:"f2" in
  Alcotest.(check int) "one stencil left" 1 (List.length fused.Program.stencils);
  Alcotest.(check (list string)) "output name kept" [ "f2" ] fused.Program.outputs;
  let radius = Fusion.equivalence_radius ~original:p ~fused in
  Alcotest.(check int) "combined radius" 2 radius;
  Alcotest.(check bool) "interior semantics preserved" true (interior_equal ~radius p fused)

let test_fuse_all_chain () =
  let p = Fixtures.chain ~shape:[ 10; 16 ] ~n:4 () in
  let fused, report = Fusion.fuse_all p in
  Alcotest.(check int) "single stencil" 1 (List.length fused.Program.stencils);
  Alcotest.(check int) "three fusions" 3 (List.length report.Fusion.fused_pairs);
  Alcotest.(check int) "before" 4 report.Fusion.stencils_before;
  Alcotest.(check int) "after" 1 report.Fusion.stencils_after;
  let radius = Fusion.equivalence_radius ~original:p ~fused in
  Alcotest.(check bool) "interior semantics preserved" true (interior_equal ~radius p fused)

let test_fusion_reduces_latency () =
  (* Fig. 11b: fusion never increases the modelled critical path (the
     combined initialization phase equals the summed spans), and the
     simulated runtime drops because per-hop pipeline overheads disappear
     ("slightly reduces runtime by pruning initialization latencies",
     Sec. V-B). *)
  let p = Fixtures.chain ~shape:[ 10; 16 ] ~n:4 () in
  let fused, _ = Fusion.fuse_all p in
  let l q = (Delay_buffer.analyze q).Delay_buffer.latency_cycles in
  Alcotest.(check bool)
    (Printf.sprintf "L fused (%d) <= L unfused (%d)" (l fused) (l p))
    true
    (l fused <= l p);
  let module Engine = Sf_sim.Engine in
  let cheap = Engine.Config.make ~latency:Sf_analysis.Latency.cheap () in
  let cycles q =
    match Engine.run_exn ~config:cheap q with
    | Engine.Completed stats -> stats.Engine.cycles
    | Engine.Deadlocked _ -> Alcotest.fail "deadlock"
  in
  let cf = cycles fused and cu = cycles p in
  Alcotest.(check bool)
    (Printf.sprintf "simulated fused (%d) < unfused (%d)" cf cu)
    true (cf < cu)

let test_fusion_diamond_partial () =
  (* a has two consumers, so a -> b cannot fuse first; fusing b into c
     leaves a with a single consumer, after which a fuses too. *)
  let p = Fixtures.diamond ~shape:[ 6; 12 ] ~span:2 () in
  let fused, report = Fusion.fuse_all p in
  Alcotest.(check int) "collapses to one stencil" 1 (List.length fused.Program.stencils);
  Alcotest.(check (list (pair string string))) "fusion order" [ ("b", "c"); ("a", "c") ]
    report.Fusion.fused_pairs;
  let radius = Fusion.equivalence_radius ~original:p ~fused in
  Alcotest.(check bool) "interior semantics" true (interior_equal ~radius p fused)

let test_fusion_with_lower_dim_shift () =
  (* kitchen_sink: lap -> flux fuses; lap reads the 1D field crlat, whose
     offsets must shift on the axis it spans. *)
  let p = Fixtures.kitchen_sink ~shape:[ 4; 6; 8 ] () in
  let fused, report = Fusion.fuse_all p in
  Alcotest.(check bool) "at least one fusion happened" true (report.Fusion.fused_pairs <> []);
  let radius = Fusion.equivalence_radius ~original:p ~fused in
  Alcotest.(check bool) "interior semantics" true (interior_equal ~radius p fused)

let test_scalar_absorbing_fusion_radius () =
  (* Regression (found by random testing): fusing a producer that reads
     only a scalar absorbs the consumer's offsets entirely, so the fused
     program's own offsets have radius 0 while the unfused program
     applied the producer's boundary condition up to the consumer's
     offset. The equivalence radius must cover both. *)
  let b = Builder.create ~name:"absorb" ~shape:[ 6; 8 ] () in
  Builder.input b "x";
  Builder.input b ~axes:[] "alpha";
  Builder.stencil b "s0" E.(sc "alpha" *% c 2.);
  Builder.stencil b
    ~boundary:[ ("s0", Boundary.Constant (-1.5)) ]
    "s1"
    E.(acc "s0" [ 0; 2 ] +% acc "x" [ 0; 0 ]);
  Builder.output b "s1";
  let p = Builder.finish b in
  let fused, report = Fusion.fuse_all p in
  Alcotest.(check int) "fused" 1 (List.length fused.Program.stencils);
  Alcotest.(check int) "one pair" 1 (List.length report.Fusion.fused_pairs);
  Alcotest.(check int) "fused program's own radius is 0" 0 (Fusion.interior_radius fused);
  let radius = Fusion.equivalence_radius ~original:p ~fused in
  Alcotest.(check int) "equivalence radius covers the absorbed offset" 2 radius;
  Alcotest.(check bool) "interior equal at the sound radius" true
    (interior_equal ~radius p fused);
  (* At radius 0 the programs genuinely differ near the boundary (that is
     the point of the regression). *)
  Alcotest.(check bool) "boundary cells differ" false (interior_equal ~radius:0 p fused)

let test_max_body_size_limits () =
  let p = Fixtures.chain ~shape:[ 10; 16 ] ~n:4 () in
  let _, unbounded = Fusion.fuse_all p in
  let _, bounded = Fusion.fuse_all ~max_body_size:10 p in
  Alcotest.(check bool) "size bound prevents some fusion" true
    (List.length bounded.Fusion.fused_pairs < List.length unbounded.Fusion.fused_pairs)

let test_work_size_accepts_shared_fusion () =
  (* A producer whose body shares work through a let is textually large
     once inlined, but small as a DAG. The historical heuristic sized the
     candidate as size(inline u) * accesses + size(inline v) = 9*2+3 = 21
     and rejected it under a bound of 15; the work-size heuristic counts
     the 11 distinct nodes of the actual fused body and accepts. *)
  let program () =
    let b = Builder.create ~name:"shared_fusion" ~shape:[ 8; 12 ] () in
    Builder.input b "a";
    Builder.stencil b
      ~boundary:[ ("a", Boundary.Constant 0.) ]
      ~lets:[ ("t", E.(sqrt_ (acc "a" [ 0; 0 ] +% acc "a" [ 0; 1 ]))) ]
      "sh"
      E.(var "t" *% var "t");
    Builder.stencil b
      ~boundary:[ ("sh", Boundary.Constant 0.) ]
      "out"
      E.(acc "sh" [ 0; -1 ] +% acc "sh" [ 0; 1 ]);
    Builder.output b "out";
    Builder.finish b
  in
  let p = program () in
  let u = Option.get (Program.find_stencil p "sh") in
  let v = Option.get (Program.find_stencil p "out") in
  let tree_estimate =
    Expr.size (Expr.inline_lets u.Stencil.body)
    * List.length (Stencil.accesses_of_field v "sh")
    + Expr.size (Expr.inline_lets v.Stencil.body)
  in
  Alcotest.(check bool) "old inlined-tree estimate exceeds the bound" true (tree_estimate > 15);
  let fused, report = Fusion.fuse_all ~max_body_size:15 p in
  Alcotest.(check int) "work-size heuristic accepts the fusion" 1
    (List.length report.Fusion.fused_pairs);
  Alcotest.(check int) "single fused stencil" 1 (List.length fused.Program.stencils);
  let body = (List.hd fused.Program.stencils).Stencil.body in
  Alcotest.(check bool) "fused work size within bound" true
    (Dag.work_size (Dag.of_body body) <= 15);
  let radius = Fusion.equivalence_radius ~original:p ~fused in
  Alcotest.(check bool) "interior semantics" true (interior_equal ~radius p fused)

let test_hdiff_fusion_shape () =
  (* Fig. 17c: aggressive fusion collapses the 18-node hdiff DAG. *)
  let p = Sf_kernels.Hdiff.program ~shape:[ 6; 12; 12 ] () in
  let fused, report = Fusion.fuse_all p in
  Alcotest.(check int) "18 stencils before" 18 report.Fusion.stencils_before;
  Alcotest.(check int) "4 outputs remain" 4 (List.length fused.Program.stencils);
  let radius = Fusion.equivalence_radius ~original:p ~fused in
  Alcotest.(check bool) "interior semantics" true (interior_equal ~radius p fused)

let prop_fusion_preserves_interior =
  let gen =
    QCheck.Gen.(
      let* n = int_range 2 5 in
      let* kind = oneofl Sf_kernels.Iterative.[ Jacobi2d; Diffusion2d; Laplace2d ] in
      return (Sf_kernels.Iterative.chain ~shape:[ 14; 14 ] kind ~length:n))
  in
  QCheck.Test.make ~count:25 ~name:"fusion preserves interior semantics on random chains"
    (QCheck.make ~print:(fun p -> p.Program.name) gen)
    (fun p ->
      let fused, _ = Fusion.fuse_all p in
      let radius = Fusion.equivalence_radius ~original:p ~fused in
      (* Keep some interior cells. *)
      QCheck.assume (radius < 7);
      interior_equal ~radius p fused)

let suite =
  [
    Alcotest.test_case "fusion preconditions" `Quick test_preconditions;
    Alcotest.test_case "fuse one pair" `Quick test_fuse_chain_pair;
    Alcotest.test_case "aggressive fusion of a chain" `Quick test_fuse_all_chain;
    Alcotest.test_case "fusion reduces latency (fig 11)" `Quick test_fusion_reduces_latency;
    Alcotest.test_case "diamond fuses only the legal edge" `Quick test_fusion_diamond_partial;
    Alcotest.test_case "lower-dimensional offsets shift on their axes" `Quick
      test_fusion_with_lower_dim_shift;
    Alcotest.test_case "scalar-absorbing fusion radius (regression)" `Quick
      test_scalar_absorbing_fusion_radius;
    Alcotest.test_case "body size bound" `Quick test_max_body_size_limits;
    Alcotest.test_case "work-size heuristic accepts shared fusion" `Quick
      test_work_size_accepts_shared_fusion;
    Alcotest.test_case "hdiff collapses to its outputs (fig 17)" `Quick test_hdiff_fusion_shape;
    QCheck_alcotest.to_alcotest prop_fusion_preserves_interior;
  ]
