open Sf_ir
open Sf_analysis
module E = Builder.E

(* Build a one-stencil 3D program with the given accesses to input a. *)
let program_with_accesses ?(vector_width = 1) ~shape offsets =
  let b = Builder.create ~vector_width ~name:"p" ~shape () in
  Builder.input b "a";
  Builder.stencil b
    ~boundary:[ ("a", Boundary.Constant 0.) ]
    "s"
    (E.sum (List.map (fun o -> E.acc "a" o) offsets));
  Builder.output b "s";
  Builder.finish b

let internal_of p =
  let s = List.hd p.Program.stencils in
  List.hd (Internal_buffer.of_stencil p s)

(* Fig. 7: in a {K,J,I} space, accesses [0,1,0] and [0,-1,0] buffer two
   rows (2I + W); accesses [1,0,0] and [-1,0,0] buffer two slices
   (2IJ + W). *)
let test_fig7_rows () =
  let i = 8 and j = 6 in
  let p = program_with_accesses ~shape:[ 4; j; i ] [ [ 0; 1; 0 ]; [ 0; -1; 0 ] ] in
  let buf = internal_of p in
  Alcotest.(check int) "2I+W" ((2 * i) + 1) buf.Internal_buffer.size_elements

let test_fig7_slices () =
  let i = 8 and j = 6 in
  let p = program_with_accesses ~shape:[ 4; j; i ] [ [ 1; 0; 0 ]; [ -1; 0; 0 ] ] in
  let buf = internal_of p in
  Alcotest.(check int) "2IJ+W" ((2 * i * j) + 1) buf.Internal_buffer.size_elements

let test_vector_width_term () =
  let i = 8 and j = 6 and w = 4 in
  let p = program_with_accesses ~vector_width:w ~shape:[ 4; j; i ] [ [ 0; 1; 0 ]; [ 0; -1; 0 ] ] in
  let buf = internal_of p in
  Alcotest.(check int) "2I+W" ((2 * i) + w) buf.Internal_buffer.size_elements

let test_intermediate_accesses_do_not_grow_buffer () =
  (* Accesses between the lowest and highest offset do not affect size
     (Sec. IV-A). *)
  let shape = [ 4; 6; 8 ] in
  let two = program_with_accesses ~shape [ [ 0; 1; 0 ]; [ 0; -1; 0 ] ] in
  let four = program_with_accesses ~shape [ [ 0; 1; 0 ]; [ 0; 0; 1 ]; [ 0; 0; -1 ]; [ 0; -1; 0 ] ] in
  Alcotest.(check int) "same size"
    (internal_of two).Internal_buffer.size_elements
    (internal_of four).Internal_buffer.size_elements

let test_single_access_no_buffer () =
  let p = program_with_accesses ~shape:[ 4; 6; 8 ] [ [ 0; 0; 0 ] ] in
  let buf = internal_of p in
  Alcotest.(check int) "no buffer" 0 buf.Internal_buffer.size_elements;
  Alcotest.(check int) "no init" 0 buf.Internal_buffer.init_elements

let test_fill_start () =
  let b = Builder.create ~name:"p" ~shape:[ 4; 6; 8 ] () in
  Builder.input b "a";
  Builder.input b "bb";
  Builder.stencil b
    ~boundary:[ ("a", Boundary.Constant 0.); ("bb", Boundary.Constant 0.) ]
    "s"
    E.(
      acc "a" [ 1; 0; 0 ] +% acc "a" [ -1; 0; 0 ]
      +% (acc "bb" [ 0; 0; 1 ] +% acc "bb" [ 0; 0; -1 ]));
  Builder.output b "s";
  let p = Builder.finish b in
  let s = List.hd p.Program.stencils in
  let bufs = Internal_buffer.of_stencil p s in
  let find f = List.find (fun (x : Internal_buffer.t) -> x.field = f) bufs in
  (* The largest buffer (a) starts immediately; the smaller (bb) is
     delayed by the difference. *)
  Alcotest.(check int) "a starts first" 0 (Internal_buffer.fill_start bufs (find "a"));
  let expected_delay =
    (find "a").Internal_buffer.init_elements - (find "bb").Internal_buffer.init_elements
  in
  Alcotest.(check int) "bb delayed" expected_delay (Internal_buffer.fill_start bufs (find "bb"))

let test_critical_path () =
  let cfg = Latency.cheap in
  let body = { Expr.lets = []; result = E.(acc "a" [ 0 ] +% (acc "a" [ 1 ] *% acc "a" [ 2 ])) } in
  Alcotest.(check int) "add(mul)" 2 (Latency.critical_path cfg body);
  let with_lets =
    {
      Expr.lets = [ ("t", E.(acc "a" [ 0 ] +% acc "a" [ 1 ])) ];
      result = E.(var "t" *% var "t");
    }
  in
  (* The let is computed once: depth = add + mul, not doubled. *)
  Alcotest.(check int) "shared let" 2 (Latency.critical_path cfg with_lets);
  let deep = { Expr.lets = []; result = E.(sqrt_ (acc "a" [ 0 ] /% acc "a" [ 1 ])) } in
  Alcotest.(check int) "configured latencies"
    (Latency.default.Latency.sqrt + Latency.default.Latency.div)
    (Latency.critical_path Latency.default deep)

let test_delay_buffer_diamond () =
  let p = Fixtures.diamond ~shape:[ 8; 16 ] ~span:3 () in
  let analysis = Delay_buffer.analyze ~config:Latency.cheap p in
  (* b's latency = init (2*span + 1 - 1 elements) + compute (1 add). *)
  let b_info = Delay_buffer.node_info analysis "b" in
  Alcotest.(check int) "b init" (2 * 3) b_info.Delay_buffer.init_cycles;
  Alcotest.(check int) "b compute" 1 b_info.Delay_buffer.compute_cycles;
  let skip = Delay_buffer.buffer_for analysis ~src:"a" ~dst:"c" in
  let direct = Delay_buffer.buffer_for analysis ~src:"b" ~dst:"c" in
  Alcotest.(check int) "skip edge buffers b's latency" 7 skip;
  Alcotest.(check int) "critical edge has no buffer" 0 direct;
  (* Every node has at least one zero in-edge. *)
  List.iter
    (fun (s : Stencil.t) ->
      let incoming =
        List.filter (fun ((_, dst), _) -> String.equal dst s.Stencil.name)
          analysis.Delay_buffer.edges
      in
      Alcotest.(check bool)
        (s.Stencil.name ^ " has a zero in-edge")
        true
        (List.exists (fun (_, buffer) -> buffer = 0) incoming))
    p.Program.stencils

let test_program_latency_chain () =
  let p = Fixtures.chain ~shape:[ 6; 10 ] ~n:3 () in
  let analysis = Delay_buffer.analyze ~config:Latency.cheap p in
  (* Each chain stage: init = 2*I + 1 - 1 = 20 cycles, compute = depth of
     0.25*(((a+b)+c)+d): 3 adds + 1 mul = 4 cycles. Three stages. *)
  List.iter
    (fun i ->
      let info = Delay_buffer.node_info analysis (Printf.sprintf "f%d" i) in
      Alcotest.(check int) "init" 20 info.Delay_buffer.init_cycles;
      Alcotest.(check int) "compute" 4 info.Delay_buffer.compute_cycles)
    [ 1; 2; 3 ];
  Alcotest.(check int) "L = 3 * 24" 72 analysis.Delay_buffer.latency_cycles

let test_vectorization_shrinks_latency () =
  let p1 = Fixtures.chain ~shape:[ 8; 32 ] ~n:4 ~vector_width:1 () in
  let p4 = Fixtures.chain ~shape:[ 8; 32 ] ~n:4 ~vector_width:4 () in
  let a1 = Delay_buffer.analyze ~config:Latency.cheap p1 in
  let a4 = Delay_buffer.analyze ~config:Latency.cheap p4 in
  Alcotest.(check bool) "vectorized latency is smaller" true
    (a4.Delay_buffer.latency_cycles < a1.Delay_buffer.latency_cycles)

let test_schedule_timing () =
  (* The derived schedule: in the diamond, c cannot take its first step
     before b's first output emerges; every stencil's first output is
     start + init + compute, and L is the maximum. *)
  let p = Fixtures.diamond ~shape:[ 8; 16 ] ~span:3 () in
  let a = Delay_buffer.analyze ~config:Latency.cheap p in
  Alcotest.(check int) "a starts immediately" 0 (Delay_buffer.start_cycle a "a");
  Alcotest.(check int) "a output" 1 (Delay_buffer.output_cycle a "a");
  Alcotest.(check int) "b starts when a produces" 1 (Delay_buffer.start_cycle a "b");
  Alcotest.(check int) "b output" 8 (Delay_buffer.output_cycle a "b");
  Alcotest.(check int) "c waits for b" 8 (Delay_buffer.start_cycle a "c");
  Alcotest.(check int) "c output" 9 (Delay_buffer.output_cycle a "c");
  Alcotest.(check int) "L is the last output" 9 a.Delay_buffer.latency_cycles;
  (* Structural invariants hold for every stencil. *)
  List.iter
    (fun (s : Stencil.t) ->
      let info = Delay_buffer.node_info a s.Stencil.name in
      Alcotest.(check int) "out = start + init + compute"
        (Delay_buffer.start_cycle a s.Stencil.name
        + info.Delay_buffer.init_cycles + info.Delay_buffer.compute_cycles)
        (Delay_buffer.output_cycle a s.Stencil.name))
    p.Program.stencils

let test_runtime_model () =
  let p = Fixtures.chain ~shape:[ 6; 10 ] ~n:3 () in
  let cells = Program.cells p in
  let expected = 72 + cells in
  Alcotest.(check int) "C = L + N" expected
    (Runtime_model.expected_cycles ~config:Latency.cheap p);
  let frac = Runtime_model.initialization_fraction ~config:Latency.cheap p in
  Alcotest.(check bool) "init fraction in (0,1)" true (frac > 0. && frac < 1.)

let test_op_count_kitchen_sink () =
  let p = Fixtures.kitchen_sink ~shape:[ 4; 6; 8 ] () in
  let counts = Op_count.of_program p in
  (* Reads: u and v once each (4*6*8), crlat (6), alpha (1). *)
  Alcotest.(check int) "read elements" ((2 * 192) + 6 + 1) counts.Op_count.read_elements;
  Alcotest.(check int) "written elements" 192 counts.Op_count.written_elements;
  Alcotest.(check bool) "flops positive" true (counts.Op_count.flops_per_cell > 0);
  (* u, v stream; crlat and alpha are prefetched; one output. *)
  Alcotest.(check int) "streaming operands" 3 (Op_count.streaming_operands_per_cycle p)

let test_roofline_eqs () =
  (* Eq. 2-4 with the paper's horizontal-diffusion numbers. *)
  let ai = 65. /. 18. in
  Alcotest.(check (float 0.1)) "eq3" 210.5
    (Roofline.attainable_ops_per_s ~ai_ops_per_byte:ai ~bandwidth_bytes_per_s:58.3);
  Alcotest.(check (float 0.05)) "eq4" 254.0
    (Roofline.bandwidth_to_saturate ~compute_ops_per_s:917.1 ~ai_ops_per_byte:ai);
  Alcotest.(check (float 1e-3)) "fraction" 0.5
    (Roofline.fraction_of_roof ~measured_ops_per_s:105.25 ~ai_ops_per_byte:ai
       ~bandwidth_bytes_per_s:58.3)

let test_vectorize_legal_widths () =
  let p = Fixtures.chain ~shape:[ 8; 32 ] ~n:2 () in
  Alcotest.(check (list int)) "widths" [ 1; 2; 4; 8; 16 ] (Vectorize.legal_widths p ~max:16);
  match Vectorize.apply p 3 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "W=3 should be rejected for I=32"

(* Property: delay buffers are always non-negative, and every stencil has
   a zero-buffer in-edge. *)
let program_gen =
  QCheck.Gen.(
    let* n = int_range 1 5 in
    let* span = int_range 0 2 in
    let* shape_i = oneofl [ 8; 12; 16 ] in
    return (Fixtures.chain ~shape:[ 4; shape_i ] ~n (), span))

let prop_delay_nonnegative =
  QCheck.Test.make ~count:50 ~name:"delay buffers non-negative with a zero in-edge"
    (QCheck.make program_gen) (fun (p, _) ->
      let a = Delay_buffer.analyze p in
      List.for_all (fun (_, b) -> b >= 0) a.Delay_buffer.edges
      && List.for_all
           (fun (s : Stencil.t) ->
             List.exists
               (fun ((_, dst), b) -> String.equal dst s.Stencil.name && b = 0)
               a.Delay_buffer.edges)
           p.Program.stencils)

let suite =
  [
    Alcotest.test_case "fig 7: row buffers (2I+W)" `Quick test_fig7_rows;
    Alcotest.test_case "fig 7: slice buffers (2IJ+W)" `Quick test_fig7_slices;
    Alcotest.test_case "vector width enters buffer size" `Quick test_vector_width_term;
    Alcotest.test_case "intermediate accesses don't grow buffers" `Quick
      test_intermediate_accesses_do_not_grow_buffer;
    Alcotest.test_case "single access needs no buffer" `Quick test_single_access_no_buffer;
    Alcotest.test_case "buffer fill scheduling" `Quick test_fill_start;
    Alcotest.test_case "AST critical path" `Quick test_critical_path;
    Alcotest.test_case "diamond delay buffers (fig 4/8)" `Quick test_delay_buffer_diamond;
    Alcotest.test_case "chain latency accumulates" `Quick test_program_latency_chain;
    Alcotest.test_case "vectorization shrinks latency" `Quick test_vectorization_shrinks_latency;
    Alcotest.test_case "derived schedule timing" `Quick test_schedule_timing;
    Alcotest.test_case "runtime model C = L + N (eq 1)" `Quick test_runtime_model;
    Alcotest.test_case "op and operand counting" `Quick test_op_count_kitchen_sink;
    Alcotest.test_case "roofline equations 2-4" `Quick test_roofline_eqs;
    Alcotest.test_case "legal vector widths" `Quick test_vectorize_legal_widths;
    QCheck_alcotest.to_alcotest prop_delay_nonnegative;
  ]
