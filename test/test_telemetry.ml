(* The telemetry layer: the typed counter registry must reconcile with
   the channel totals the engine has always maintained, the instrumented
   schedule must reproduce the uninstrumented run exactly (cycles,
   stalls, outputs), stall attribution must blame the channel that
   actually causes the Fig. 4 deadlock, and the Chrome trace export must
   be well-formed trace_event JSON. *)
module Engine = Sf_sim.Engine
module Telemetry = Sf_sim.Telemetry
module Interp = Sf_reference.Interp
module Diag = Sf_support.Diag
module Json = Sf_support.Json

let cheap = Engine.Config.make ~latency:Sf_analysis.Latency.cheap ()

let instrumented ?(base = cheap) () =
  { base with Engine.Config.tracing = Engine.Config.tracing ~telemetry:true () }

let contains_substring haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let completed = function
  | Engine.Completed stats -> stats
  | Engine.Deadlocked { cycle; _ } -> Alcotest.failf "unexpected deadlock at cycle %d" cycle

(* ------------------------------------------------------------------ *)
(* Registry accounting                                                 *)
(* ------------------------------------------------------------------ *)

(* Every word that enters a channel leaves it: summing pushes and pops
   over the registry's component rows must each equal the sum of the
   channel totals, and the byte counters must match the engine's own
   off-chip accounting. *)
let test_registry_reconciles () =
  let p = Fixtures.diamond ~shape:[ 8; 16 ] ~span:5 () in
  let stats = completed (Engine.run_exn ~config:(instrumented ()) p) in
  let t = stats.Engine.telemetry in
  let sum f l = List.fold_left (fun acc x -> acc + f x) 0 l in
  let channel_pushed = sum (fun (c : Telemetry.channel_info) -> c.Telemetry.total_pushed) t.Telemetry.channels in
  let channel_popped = sum (fun (c : Telemetry.channel_info) -> c.Telemetry.total_popped) t.Telemetry.channels in
  Alcotest.(check int) "channels drained" channel_pushed channel_popped;
  let comp_pushes = sum (fun (c : Telemetry.counters) -> c.Telemetry.pushes) t.Telemetry.components in
  let comp_pops = sum (fun (c : Telemetry.counters) -> c.Telemetry.pops) t.Telemetry.components in
  (* Links pop from their source channel and push into their remote
     destination, so without links components' pushes = channel pushes. *)
  Alcotest.(check int) "registry pushes match channel totals" channel_pushed comp_pushes;
  Alcotest.(check int) "registry pops match channel totals" channel_popped comp_pops;
  let reader_bytes =
    sum
      (fun (c : Telemetry.counters) ->
        if c.Telemetry.kind = Telemetry.Reader then c.Telemetry.bytes else 0)
      t.Telemetry.components
  in
  let writer_bytes =
    sum
      (fun (c : Telemetry.counters) ->
        if c.Telemetry.kind = Telemetry.Writer then c.Telemetry.bytes else 0)
      t.Telemetry.components
  in
  Alcotest.(check int) "reader bytes = bytes_read" stats.Engine.bytes_read reader_bytes;
  Alcotest.(check int) "writer bytes = bytes_written" stats.Engine.bytes_written writer_bytes

(* Per-component invariants: cause breakdown and blamed channels sum to
   the stalled total, and busy + stalled never exceeds the run length. *)
let test_registry_per_component () =
  let p = Fixtures.kitchen_sink () in
  let stats = completed (Engine.run_exn ~config:(instrumented ()) p) in
  let t = stats.Engine.telemetry in
  Alcotest.(check bool) "telemetry enabled" true t.Telemetry.enabled;
  List.iter
    (fun (c : Telemetry.counters) ->
      let by_cause = List.fold_left (fun acc (_, n) -> acc + n) 0 c.Telemetry.stalls_by_cause in
      Alcotest.(check int)
        (c.Telemetry.name ^ ": causes sum to stalled total")
        c.Telemetry.stalled_cycles by_cause;
      let blamed = List.fold_left (fun acc (_, n) -> acc + n) 0 c.Telemetry.blocked_on in
      Alcotest.(check bool)
        (c.Telemetry.name ^ ": blamed <= stalled")
        true
        (blamed <= c.Telemetry.stalled_cycles);
      Alcotest.(check bool)
        (c.Telemetry.name ^ ": busy + stalled <= cycles")
        true
        (c.Telemetry.busy_cycles + c.Telemetry.stalled_cycles <= t.Telemetry.cycles))
    t.Telemetry.components

(* ------------------------------------------------------------------ *)
(* Instrumented / uninstrumented equivalence                           *)
(* ------------------------------------------------------------------ *)

(* Turning the probes on must not change what the simulator computes:
   same cycle count, same per-unit stall totals, same high-water marks,
   same output tensors. *)
let test_telemetry_off_on_equivalence () =
  List.iter
    (fun (name, p) ->
      let inputs = Interp.random_inputs p in
      let off = completed (Engine.run_exn ~config:cheap ~inputs p) in
      let on = completed (Engine.run_exn ~config:(instrumented ()) ~inputs p) in
      Alcotest.(check int) (name ^ ": cycles") off.Engine.cycles on.Engine.cycles;
      Alcotest.(check (list (pair string int)))
        (name ^ ": unit stalls")
        (Telemetry.unit_stalls off.Engine.telemetry)
        (Telemetry.unit_stalls on.Engine.telemetry);
      List.iter2
        (fun (n, hw, cap) (n', hw', cap') ->
          Alcotest.(check (triple string int int)) (name ^ ": high water " ^ n) (n, hw, cap)
            (n', hw', cap'))
        (Telemetry.channel_high_water off.Engine.telemetry)
        (Telemetry.channel_high_water on.Engine.telemetry);
      List.iter2
        (fun (n, (r : Interp.result)) (n', (r' : Interp.result)) ->
          Alcotest.(check string) (name ^ ": output name") n n';
          Alcotest.(check (array (float 0.0)))
            (name ^ ": output " ^ n)
            r.Interp.tensor.Sf_reference.Tensor.data r'.Interp.tensor.Sf_reference.Tensor.data)
        off.Engine.results on.Engine.results)
    [
      ("laplace2d", Fixtures.laplace2d ());
      ("diamond", Fixtures.diamond ~shape:[ 8; 16 ] ~span:5 ());
      ("kitchen-sink", Fixtures.kitchen_sink ());
    ]

(* With telemetry off the probes are [None]: no spans accumulate, but
   the always-on aggregates are still harvested. *)
let test_disabled_report_shape () =
  let stats = completed (Engine.run_exn ~config:cheap (Fixtures.laplace2d ())) in
  let t = stats.Engine.telemetry in
  Alcotest.(check bool) "disabled" false t.Telemetry.enabled;
  Alcotest.(check (list (pair string int))) "no spans" [] (List.map (fun (s : Telemetry.span) -> (s.Telemetry.track, s.Telemetry.start_cycle)) t.Telemetry.spans);
  Alcotest.(check bool) "components harvested" true (t.Telemetry.components <> []);
  Alcotest.(check bool) "channels harvested" true (t.Telemetry.channels <> [])

(* ------------------------------------------------------------------ *)
(* Stall attribution on the Fig. 4 deadlock                            *)
(* ------------------------------------------------------------------ *)

let deadlock_config =
  {
    (instrumented ()) with
    Engine.Config.override_edge_buffers = [ (("a", "c"), 0) ];
    Engine.Config.channel_slack = 2;
    Engine.Config.safety = Engine.Config.safety ~deadlock_window:256 ();
  }

(* Shrinking the skip edge of the diamond to nothing deadlocks the run;
   the attribution table must rank a blocked component blaming the
   undersized "a->c" channel. *)
let test_attribution_names_blocking_channel () =
  let p = Fixtures.diamond ~shape:[ 8; 16 ] ~span:5 () in
  match Engine.run_exn ~config:deadlock_config p with
  | Engine.Completed _ -> Alcotest.fail "expected deadlock"
  | Engine.Deadlocked { telemetry; timed_out; _ } ->
      Alcotest.(check bool) "true deadlock, not timeout" false timed_out;
      let rows = Telemetry.attribution telemetry in
      Alcotest.(check bool) "attribution nonempty" true (rows <> []);
      let blames_skip_edge =
        List.exists
          (fun (c : Telemetry.counters) ->
            match Telemetry.top_blocker c with
            | Some ("a->c", _) -> true
            | _ -> false)
          rows
      in
      Alcotest.(check bool) "some component blames a->c" true blames_skip_edge;
      let rendered = Format.asprintf "%a" Telemetry.pp_attribution telemetry in
      Alcotest.(check bool) "table names a->c" true
        (contains_substring rendered "a->c")

(* The structured failure path: a deadlock is SF0701 with the
   attribution attached as notes; exhausting the cycle budget is SF0703. *)
let test_failure_diags () =
  let p = Fixtures.diamond ~shape:[ 8; 16 ] ~span:5 () in
  (match Engine.run ~config:deadlock_config p with
  | Ok _ -> Alcotest.fail "expected deadlock"
  | Error d ->
      Alcotest.(check string) "deadlock code" Diag.Code.sim_deadlock d.Diag.code;
      Alcotest.(check bool) "has notes" true (d.Diag.notes <> []));
  let timeout_config =
    { cheap with Engine.Config.safety = Engine.Config.safety ~max_cycles:10 () }
  in
  match Engine.run ~config:timeout_config p with
  | Ok _ -> Alcotest.fail "expected timeout"
  | Error d -> Alcotest.(check string) "timeout code" Diag.Code.sim_timeout d.Diag.code

(* ------------------------------------------------------------------ *)
(* JSON exports                                                        *)
(* ------------------------------------------------------------------ *)

let reparse json =
  match Json.parse (Json.to_string json) with
  | Ok v -> v
  | Error e -> Alcotest.failf "export is not valid JSON: %s" (Json.error_to_string e)

let test_counters_json () =
  let p = Fixtures.laplace2d () in
  let stats = completed (Engine.run_exn ~config:(instrumented ()) p) in
  let t = stats.Engine.telemetry in
  let v = reparse (Telemetry.counters_json t) in
  let components =
    match Json.member_exn "components" v with
    | Json.List l -> l
    | _ -> Alcotest.fail "components is not a list"
  in
  Alcotest.(check int) "one row per component" (List.length t.Telemetry.components)
    (List.length components);
  Alcotest.(check int) "cycles field" stats.Engine.cycles
    (Json.get_int (Json.member_exn "cycles" v))

(* The Chrome trace must be an object with a traceEvents array in which
   every event carries the mandatory ph/pid/tid/name fields, complete
   events ("X") have ts + dur, and stall spans carry the blamed channel
   in args. *)
let test_trace_events_json () =
  let p = Fixtures.diamond ~shape:[ 8; 16 ] ~span:5 () in
  let config =
    { (instrumented ()) with
      Engine.Config.tracing = Engine.Config.tracing ~trace_interval:8 ~telemetry:true () }
  in
  let stats = completed (Engine.run_exn ~config p) in
  let v = reparse (Telemetry.trace_events_json stats.Engine.telemetry) in
  let events =
    match Json.member_exn "traceEvents" v with
    | Json.List l -> l
    | _ -> Alcotest.fail "traceEvents is not a list"
  in
  Alcotest.(check bool) "has events" true (events <> []);
  let phases = List.filter_map (fun e -> Json.member "ph" e) events in
  Alcotest.(check int) "every event has ph" (List.length events) (List.length phases);
  let has ph = List.exists (fun p -> p = Json.String ph) phases in
  Alcotest.(check bool) "metadata events" true (has "M");
  Alcotest.(check bool) "complete events" true (has "X");
  Alcotest.(check bool) "counter events" true (has "C");
  List.iter
    (fun e ->
      match Json.member "ph" e with
      | Some (Json.String "X") ->
          Alcotest.(check bool) "X has ts" true (Json.member "ts" e <> None);
          Alcotest.(check bool) "X has dur" true (Json.member "dur" e <> None)
      | _ -> ())
    events

(* ------------------------------------------------------------------ *)
(* Config ergonomics                                                   *)
(* ------------------------------------------------------------------ *)

let test_config_defaults () =
  let c = Engine.Config.make () in
  Alcotest.(check bool) "default = make ()" true (c = Engine.Config.default);
  Alcotest.(check bool)
    "faults disabled by default" true
    (Option.is_none c.Engine.Config.faults.Engine.Config.plan);
  Alcotest.(check int) "writer buffer" 8 c.Engine.Config.bandwidth.Engine.Config.writer_buffer;
  Alcotest.(check int) "net latency" 64 c.Engine.Config.network.Engine.Config.net_latency_cycles;
  Alcotest.(check int) "deadlock window" 4096 c.Engine.Config.safety.Engine.Config.deadlock_window;
  Alcotest.(check bool) "telemetry off by default" false c.Engine.Config.tracing.Engine.Config.telemetry

let suite =
  [
    Alcotest.test_case "registry reconciles with channel totals" `Quick test_registry_reconciles;
    Alcotest.test_case "per-component counter invariants" `Quick test_registry_per_component;
    Alcotest.test_case "instrumented run matches uninstrumented" `Quick
      test_telemetry_off_on_equivalence;
    Alcotest.test_case "disabled report keeps always-on aggregates" `Quick
      test_disabled_report_shape;
    Alcotest.test_case "attribution blames the undersized channel" `Quick
      test_attribution_names_blocking_channel;
    Alcotest.test_case "deadlock and timeout diagnostics" `Quick test_failure_diags;
    Alcotest.test_case "counters JSON round-trips" `Quick test_counters_json;
    Alcotest.test_case "Chrome trace export is well-formed" `Quick test_trace_events_json;
    Alcotest.test_case "Config.make defaults" `Quick test_config_defaults;
  ]
