(* Shared example programs used across test suites. *)
open Sf_ir
module E = Builder.E

(* Unwrap the diagnostics-returning APIs; tests treat failure as fatal. *)
let ok = function
  | Ok v -> v
  | Error ds ->
      failwith (String.concat "; " (List.map Sf_support.Diag.to_string ds))

let ok1 = function Ok v -> v | Error d -> failwith (Sf_support.Diag.to_string d)

(* 2D Laplace operator (Fig. 9): one stencil, four neighbour accesses. *)
let laplace2d ?(shape = [ 8; 8 ]) ?(vector_width = 1) () =
  let b = Builder.create ~vector_width ~name:"laplace2d" ~shape () in
  Builder.input b "a";
  Builder.stencil b
    ~boundary:[ ("a", Boundary.Constant 0.) ]
    "lap"
    E.(
      acc "a" [ 0; -1 ] +% acc "a" [ 0; 1 ] +% acc "a" [ -1; 0 ] +% acc "a" [ 1; 0 ]
      -% (c 4. *% acc "a" [ 0; 0 ]));
  Builder.output b "lap";
  Builder.finish b

(* The diamond of Fig. 4: c needs a directly and through b; the skip edge
   a -> c needs a delay buffer covering b's latency. [span] widens b's
   internal buffer to make that latency substantial. *)
let diamond ?(shape = [ 8; 16 ]) ?(span = 3) () =
  let b = Builder.create ~name:"diamond" ~shape () in
  Builder.input b "x";
  Builder.stencil b "a" E.(acc "x" [ 0; 0 ] *% c 2.);
  Builder.stencil b
    ~boundary:[ ("a", Boundary.Constant 0.) ]
    "b"
    E.(acc "a" [ 0; -span ] +% acc "a" [ 0; span ]);
  Builder.stencil b "c" E.(acc "a" [ 0; 0 ] +% acc "b" [ 0; 0 ]);
  Builder.output b "c";
  Builder.finish b

(* A linear chain of [n] dependent Jacobi-style stencils (Sec. VIII-C). *)
let chain ?(shape = [ 6; 10 ]) ?(n = 4) ?(vector_width = 1) () =
  let b = Builder.create ~vector_width ~name:"chain" ~shape () in
  Builder.input b "f0";
  let prev = ref "f0" in
  for i = 1 to n do
    let name = Printf.sprintf "f%d" i in
    Builder.stencil b
      ~boundary:[ (!prev, Boundary.Constant 0.) ]
      name
      E.(
        c 0.25
        *% (acc !prev [ 0; -1 ] +% acc !prev [ 0; 1 ] +% acc !prev [ -1; 0 ]
           +% acc !prev [ 1; 0 ]));
    prev := name
  done;
  Builder.output b !prev;
  Builder.finish b

(* A program exercising every boundary condition, a scalar input, a
   lower-dimensional (per-row) input, lets, and a data-dependent branch. *)
let kitchen_sink ?(shape = [ 4; 6; 8 ]) ?(vector_width = 1) () =
  let b = Builder.create ~vector_width ~name:"kitchen_sink" ~shape () in
  Builder.input b "u";
  Builder.input b "v";
  Builder.input b ~axes:[ 1 ] "crlat";
  Builder.input b ~axes:[] "alpha";
  Builder.stencil b
    ~boundary:[ ("u", Boundary.Copy); ("v", Boundary.Constant 1.) ]
    ~lets:[ ("t", E.(acc "u" [ 0; 0; -1 ] +% acc "u" [ 0; 0; 1 ] -% (c 2. *% acc "u" [ 0; 0; 0 ]))) ]
    "lap"
    E.(var "t" *% acc "crlat" [ 0 ] +% (acc "v" [ 0; -1; 0 ] *% sc "alpha"));
  Builder.stencil b
    ~boundary:[ ("lap", Boundary.Constant 0.) ]
    "flux"
    E.(
      sel
        (acc "lap" [ 0; 0; 1 ] -% acc "lap" [ 0; 0; 0 ] >% c 0.)
        (min_ (acc "lap" [ 0; 0; 0 ]) (acc "lap" [ 0; 0; 1 ]))
        (max_ (acc "lap" [ 0; 0; 0 ]) (acc "lap" [ 0; 0; 1 ])));
  Builder.stencil b ~shrink:true
    ~boundary:[ ("flux", Boundary.Constant 0.) ]
    "out"
    E.(acc "u" [ 0; 0; 0 ] -% (sc "alpha" *% (acc "flux" [ 0; 0; 0 ] -% acc "flux" [ 0; 0; -1 ])));
  Builder.output b "out";
  Builder.finish b

(* Multiple outputs sharing inputs: a fork whose two results are both
   written to memory. *)
let fork ?(shape = [ 8; 8 ]) () =
  let b = Builder.create ~name:"fork" ~shape () in
  Builder.input b "a";
  Builder.stencil b "left" E.(acc "a" [ 0; 0 ] +% c 1.);
  Builder.stencil b
    ~boundary:[ ("a", Boundary.Constant 0.) ]
    "right"
    E.(acc "a" [ -1; 0 ] *% acc "a" [ 1; 0 ]);
  Builder.stencil b "join" E.(acc "left" [ 0; 0 ] +% acc "right" [ 0; 0 ]);
  Builder.output b "left";
  Builder.output b "join";
  Builder.finish b
