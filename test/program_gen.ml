(* QCheck generator for arbitrary well-formed stencil programs: random
   rank, shape, input fields (including lower-dimensional and scalar
   ones), a random DAG of stencils with random bodies, boundary
   conditions and shrink flags. Drives the cross-cutting property tests
   in Test_random_programs. *)
open Sf_ir
open QCheck.Gen

let identifier prefix i = Printf.sprintf "%s%d" prefix i

let offsets_gen ~rank_of_field =
  list_repeat rank_of_field (int_range (-2) 2)

(* A random expression over the given (field, field_rank) environment.
   Division, log and exp are excluded to keep values bounded; sqrt is
   applied to |x|. *)
let expr_gen ~fields ~depth =
  let leaf =
    oneof
      [
        map (fun f -> Expr.Const (Float.of_int f /. 4.)) (int_range (-8) 8);
        (let* field, rank_of_field = oneofl fields in
         let* offsets = offsets_gen ~rank_of_field in
         return (Expr.Access { field; offsets }));
      ]
  in
  let rec node depth =
    if depth = 0 then leaf
    else
      frequency
        [
          (2, leaf);
          ( 4,
            let* op = oneofl [ Expr.Add; Expr.Sub; Expr.Mul ] in
            let* l = node (depth - 1) in
            let* r = node (depth - 1) in
            return (Expr.Binary (op, l, r)) );
          ( 1,
            let* f = oneofl [ Expr.Min; Expr.Max ] in
            let* l = node (depth - 1) in
            let* r = node (depth - 1) in
            return (Expr.Call (f, [ l; r ])) );
          (1, map (fun x -> Expr.Call (Expr.Abs, [ x ])) (node (depth - 1)));
          (1, map (fun x -> Expr.Call (Expr.Sqrt, [ Expr.Call (Expr.Abs, [ x ]) ])) (node (depth - 1)));
          ( 1,
            let* cmp = oneofl [ Expr.Lt; Expr.Le; Expr.Gt; Expr.Ge ] in
            let* a = node (depth - 1) in
            let* b = node (depth - 1) in
            let* t = node (depth - 1) in
            let* f = node (depth - 1) in
            return (Expr.Select { cond = Expr.Binary (cmp, a, b); if_true = t; if_false = f }) );
        ]
  in
  node depth

(* Adversarial expressions for the bit-exactness properties: division
   (inf and 0/0 NaNs), signed zeros, NaN and inf constants, Eq/Ne used
   both as values and as data-dependent select conditions. Values are
   deliberately unbounded — the properties compare bit-for-bit, not
   within a tolerance. *)
let adversarial_expr_gen ~fields ~depth =
  let access =
    let* field, rank_of_field = oneofl fields in
    let* offsets = offsets_gen ~rank_of_field in
    return (Expr.Access { field; offsets })
  in
  let leaf =
    frequency
      [
        (3, map (fun f -> Expr.Const (Float.of_int f /. 4.)) (int_range (-8) 8));
        (2, map (fun c -> Expr.Const c) (oneofl [ 0.0; -0.0; 1.0; Float.nan; Float.infinity ]));
        (4, access);
      ]
  in
  let rec node depth =
    if depth = 0 then leaf
    else
      frequency
        [
          (2, leaf);
          ( 4,
            let* op = oneofl [ Expr.Add; Expr.Sub; Expr.Mul; Expr.Div ] in
            let* l = node (depth - 1) in
            let* r = node (depth - 1) in
            return (Expr.Binary (op, l, r)) );
          ( 2,
            let* cmp = oneofl [ Expr.Eq; Expr.Ne; Expr.Lt; Expr.Le ] in
            let* l = node (depth - 1) in
            let* r = node (depth - 1) in
            return (Expr.Binary (cmp, l, r)) );
          ( 2,
            (* Data-dependent branch: the condition reads field data. *)
            let* cmp = oneofl [ Expr.Eq; Expr.Ne; Expr.Lt; Expr.Ge ] in
            let* a = access in
            let* b = node (depth - 1) in
            let* t = node (depth - 1) in
            let* f = node (depth - 1) in
            return (Expr.Select { cond = Expr.Binary (cmp, a, b); if_true = t; if_false = f }) );
          (1, map (fun x -> Expr.Call (Expr.Sqrt, [ x ])) (node (depth - 1)));
          ( 1,
            let* f = oneofl [ Expr.Min; Expr.Max ] in
            let* l = node (depth - 1) in
            let* r = node (depth - 1) in
            return (Expr.Call (f, [ l; r ])) );
        ]
  in
  node depth

let boundary_gen =
  oneof
    [
      map (fun c -> Boundary.Constant (Float.of_int c /. 2.)) (int_range (-4) 4);
      return Boundary.Copy;
    ]

let program_gen_with ~expr =
  let* rank = int_range 1 3 in
  let* shape =
    match rank with
    | 1 -> map (fun i -> [ 2 * i ]) (int_range 3 8)
    | 2 ->
        let* j = int_range 3 6 in
        let* i = int_range 2 4 in
        return [ j; 2 * i ]
    | _ ->
        let* k = int_range 2 4 in
        let* j = int_range 2 4 in
        let* i = int_range 2 3 in
        return [ k; j; 2 * i ]
  in
  let* num_full_inputs = int_range 1 2 in
  let* num_lower = if rank > 1 then int_range 0 2 else return 0 in
  let* vector_width = oneofl [ 1; 2 ] in
  let full_inputs = List.map (identifier "in") (Sf_support.Util.range num_full_inputs) in
  let* lower_inputs =
    List.fold_left
      (fun acc i ->
        let* acc = acc in
        let* axes =
          if rank = 2 then oneofl [ []; [ 0 ]; [ 1 ] ]
          else oneofl [ []; [ 0 ]; [ 1 ]; [ 2 ]; [ 1; 2 ] ]
        in
        return ((identifier "lo" i, axes) :: acc))
      (return []) (Sf_support.Util.range num_lower)
  in
  let* num_stencils = int_range 1 5 in
  let rank_of name =
    if List.exists (String.equal name) full_inputs then rank
    else
      match List.assoc_opt name lower_inputs with
      | Some axes -> List.length axes
      | None -> rank (* stencil result *)
  in
  let* stencils =
    List.fold_left
      (fun acc i ->
        let* acc = acc in
        let name = identifier "s" i in
        let available =
          full_inputs
          @ List.map fst lower_inputs
          @ List.map (fun (s : Stencil.t) -> s.Stencil.name) acc
        in
        let* num_reads = int_range 1 (min 3 (List.length available)) in
        let* chosen =
          (* Sample without replacement, biased towards recent names so
             DAGs chain rather than always fanning from the inputs. *)
          let rec pick n pool acc_fields =
            if n = 0 || pool = [] then return acc_fields
            else
              let* idx = int_range 0 (List.length pool - 1) in
              let f = List.nth pool idx in
              pick (n - 1) (List.filter (fun x -> not (String.equal x f)) pool) (f :: acc_fields)
          in
          pick num_reads available []
        in
        let fields = List.map (fun f -> (f, rank_of f)) chosen in
        let* body = expr ~fields ~depth:3 in
        (* Ensure every chosen field is actually read (the generator may
           have dropped some): sum unused ones in. *)
        let used = List.map fst (Expr.accesses body) in
        let body =
          List.fold_left
            (fun e (f, r) ->
              if List.exists (String.equal f) used then e
              else
                Expr.Binary
                  (Expr.Add, e, Expr.Access { field = f; offsets = List.map (fun _ -> 0) (Sf_support.Util.range r) }))
            body fields
        in
        let* boundary =
          List.fold_left
            (fun acc (f, _) ->
              let* acc = acc in
              let* b = boundary_gen in
              return ((f, b) :: acc))
            (return []) fields
        in
        let* shrink = frequency [ (4, return false); (1, return true) ] in
        return (acc @ [ Stencil.make ~boundary ~shrink ~name { Expr.lets = []; result = body } ]))
      (return []) (Sf_support.Util.range num_stencils)
  in
  let inputs =
    List.map (fun n -> Field.make ~name:n ~full_rank:rank ()) full_inputs
    @ List.map (fun (n, axes) -> Field.make ~axes ~name:n ~full_rank:rank ()) lower_inputs
  in
  let program =
    Program.make ~vector_width ~name:"random" ~shape ~inputs ~outputs:[] stencils
  in
  (* Outputs: every stencil not consumed by another (so nothing is dead);
     inputs that are never read are dropped. *)
  let read_fields =
    List.concat_map (fun (s : Stencil.t) -> Stencil.input_fields s) stencils
  in
  let outputs =
    List.filter_map
      (fun (s : Stencil.t) ->
        if List.exists (String.equal s.Stencil.name) read_fields then None
        else Some s.Stencil.name)
      stencils
  in
  let inputs =
    List.filter (fun f -> List.exists (String.equal f.Field.name) read_fields) inputs
  in
  return { program with Program.inputs; outputs }

let program_gen = program_gen_with ~expr:expr_gen
let adversarial_program_gen = program_gen_with ~expr:adversarial_expr_gen

let arbitrary_program =
  QCheck.make ~print:(fun p -> Format.asprintf "%a" Program.pp p) program_gen

let arbitrary_adversarial_program =
  QCheck.make ~print:(fun p -> Format.asprintf "%a" Program.pp p) adversarial_program_gen
