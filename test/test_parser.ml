open Sf_ir
module Parser = Sf_frontend.Parser
module E = Builder.E

let expr_testable = Alcotest.testable (fun fmt e -> Expr.pp fmt e) Expr.equal
let parse_body ~output src = Fixtures.ok1 (Parser.parse_body ~output src)

let check_parse src expected () =
  Alcotest.check expr_testable src expected (Fixtures.ok1 (Parser.parse_expr src))

let test_unary_minus_literal =
  check_parse "-2.0" (Expr.Unary (Expr.Neg, Expr.Const 2.))

let test_precedence =
  check_parse "1 + 2 * 3 < 4 && 5 > 6 || !x"
    E.(
      (c 1. +% (c 2. *% c 3.) <% c 4.) &&% (c 5. >% c 6.)
      ||% Expr.Unary (Expr.Not, var "x"))

let test_ternary_right_assoc =
  check_parse "a ? 1 : b ? 2 : 3" E.(sel (var "a") (c 1.) (sel (var "b") (c 2.) (c 3.)))

let test_access_offsets =
  check_parse "a[0, -1, +2] * b[1]" E.(acc "a" [ 0; -1; 2 ] *% acc "b" [ 1 ])

let test_calls =
  check_parse "min(sqrt(a[0]), pow(b[0], 2))"
    E.(min_ (sqrt_ (acc "a" [ 0 ])) (pow_ (acc "b" [ 0 ]) (c 2.)))

let test_comments_in_code =
  check_parse "1 + // note\n 2" E.(c 1. +% c 2.)

let test_errors () =
  let fails src =
    match Parser.parse_expr src with
    | Error d ->
        Alcotest.(check bool)
          ("located diagnostic for " ^ src)
          true
          (List.mem d.Sf_support.Diag.code
             [ Sf_support.Diag.Code.lex; Sf_support.Diag.Code.syntax ])
    | Ok _ -> Alcotest.fail ("expected syntax error for " ^ src)
  in
  fails "1 +";
  fails "a[0";
  fails "a[1.5]";
  fails "unknownfn(1)";
  fails "sqrt(1, 2)";
  fails "min(1)";
  fails "(1";
  fails "1 2";
  fails "a ? 1";
  fails "@"

let test_assignments () =
  let stmts = Fixtures.ok1 (Parser.parse_assignments "t = a[0] + 1.0; out = t * t;") in
  Alcotest.(check int) "two statements" 2 (List.length stmts);
  Alcotest.(check string) "first lhs" "t" (fst (List.hd stmts))

let test_body_statement_form () =
  let body = parse_body ~output:"out" "t = a[0] + 1.0; out = t * t" in
  Alcotest.(check int) "one let" 1 (List.length body.Expr.lets);
  Alcotest.check expr_testable "result" E.(var "t" *% var "t") body.Expr.result

let test_body_expression_form () =
  let body = parse_body ~output:"out" "a[0] * 2.0" in
  Alcotest.(check int) "no lets" 0 (List.length body.Expr.lets);
  Alcotest.check expr_testable "result" E.(acc "a" [ 0 ] *% c 2.) body.Expr.result

let test_body_wrong_output () =
  match Parser.parse_body ~output:"out" "x = 1.0; y = 2.0;" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "final statement must assign the output"

let test_resolve_scalars () =
  let body = parse_body ~output:"out" "t = alpha * a[0]; out = t + alpha" in
  let resolved = Parser.resolve_body ~scalar:(String.equal "alpha") body in
  let lets_expr = snd (List.hd resolved.Expr.lets) in
  Alcotest.check expr_testable "alpha resolved in let" E.(sc "alpha" *% acc "a" [ 0 ]) lets_expr;
  Alcotest.check expr_testable "alpha resolved in result" E.(var "t" +% sc "alpha")
    resolved.Expr.result

let test_resolve_respects_let_shadowing () =
  (* A let binding named like a scalar field shadows it downstream. *)
  let body = parse_body ~output:"out" "alpha = 2.0; out = alpha * a[0]" in
  let resolved = Parser.resolve_body ~scalar:(String.equal "alpha") body in
  Alcotest.check expr_testable "shadowed stays a var" E.(var "alpha" *% acc "a" [ 0 ])
    resolved.Expr.result

let suite =
  [
    Alcotest.test_case "unary minus on literals" `Quick test_unary_minus_literal;
    Alcotest.test_case "operator precedence" `Quick test_precedence;
    Alcotest.test_case "ternary right associativity" `Quick test_ternary_right_assoc;
    Alcotest.test_case "access offsets with signs" `Quick test_access_offsets;
    Alcotest.test_case "math calls with arity checking" `Quick test_calls;
    Alcotest.test_case "comments inside code" `Quick test_comments_in_code;
    Alcotest.test_case "syntax errors" `Quick test_errors;
    Alcotest.test_case "assignment sequences" `Quick test_assignments;
    Alcotest.test_case "statement-form body" `Quick test_body_statement_form;
    Alcotest.test_case "expression-form body" `Quick test_body_expression_form;
    Alcotest.test_case "body must end assigning output" `Quick test_body_wrong_output;
    Alcotest.test_case "scalar identifier resolution" `Quick test_resolve_scalars;
    Alcotest.test_case "let shadowing of scalar names" `Quick test_resolve_respects_let_shadowing;
  ]
