(* The JSON program descriptions shipped under examples/programs must
   parse, validate, roundtrip, and (being small) simulate correctly. *)
module Program_json = Sf_frontend.Program_json
module Engine = Sf_sim.Engine

let programs_dir = "../examples/programs"

let example_files () =
  Sys.readdir programs_dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".json")
  |> List.sort String.compare
  |> List.map (Filename.concat programs_dir)

let test_all_examples_load () =
  let files = example_files () in
  Alcotest.(check bool) "examples shipped" true (List.length files >= 4);
  List.iter
    (fun file ->
      let p = Fixtures.ok (Program_json.of_file file) in
      (* Parse -> print -> parse is stable. *)
      let q = Fixtures.ok (Program_json.of_string (Program_json.to_string p)) in
      Alcotest.(check int) (file ^ " roundtrip") (List.length p.Sf_ir.Program.stencils)
        (List.length q.Sf_ir.Program.stencils))
    files

let test_examples_simulate () =
  List.iter
    (fun file ->
      let p = Fixtures.ok (Program_json.of_file file) in
      if Sf_ir.Program.cells p <= 16384 then
        match Engine.run_and_validate p with
        | Ok _ -> ()
        | Error m -> Alcotest.fail (file ^ ": " ^ Sf_support.Diag.to_string m))
    (example_files ())

let suite =
  [
    Alcotest.test_case "shipped programs parse and roundtrip" `Quick test_all_examples_load;
    Alcotest.test_case "shipped programs simulate and validate" `Slow test_examples_simulate;
  ]
