(* Cross-cutting properties on fully random programs (Program_gen):
   every layer of the stack must agree with the sequential reference on
   arbitrary DAGs, not just the curated fixtures. *)
open Sf_ir
module Engine = Sf_sim.Engine
module Interp = Sf_reference.Interp
module Tensor = Sf_reference.Tensor
module Fusion = Sf_sdfg.Fusion
module Opt = Sf_sdfg.Opt
module Sdfg = Sf_sdfg.Sdfg
module Tiling = Sf_mapping.Tiling
module Program_json = Sf_frontend.Program_json

let cheap = Engine.Config.make ~latency:Sf_analysis.Latency.cheap ()

let semantically_equal ?(inputs = None) p q =
  let inputs = match inputs with Some i -> i | None -> Interp.random_inputs p in
  let rp = Interp.run p ~inputs and rq = Interp.run q ~inputs in
  List.for_all
    (fun (name, (r : Interp.result)) ->
      match List.assoc_opt name rq with
      | None -> false
      | Some r' ->
          r.Interp.valid = r'.Interp.valid
          &&
          let ok = ref true in
          Array.iteri
            (fun i v ->
              if r.Interp.valid.(i) then begin
                let v' = Tensor.get_flat r'.Interp.tensor i in
                if not ((Float.is_nan v && Float.is_nan v') || Float.abs (v -. v') <= 1e-9)
                then ok := false
              end)
            r.Interp.tensor.Tensor.data;
          !ok)
    rp

let prop_generator_produces_valid =
  QCheck.Test.make ~count:200 ~name:"generator produces valid programs"
    Program_gen.arbitrary_program (fun p ->
      match Program.validate p with Ok () -> true | Error _ -> false)

let prop_sim_equals_reference =
  QCheck.Test.make ~count:60 ~name:"random programs: simulator equals reference"
    Program_gen.arbitrary_program (fun p ->
      match Engine.run_and_validate ~config:cheap p with Ok _ -> true | Error _ -> false)

let prop_cycles_near_model =
  QCheck.Test.make ~count:40 ~name:"random programs: cycles within envelope of Eq. 1"
    Program_gen.arbitrary_program (fun p ->
      match Engine.run_exn ~config:cheap p with
      | Engine.Deadlocked _ -> false
      | Engine.Completed stats ->
          let nodes = List.length p.Program.stencils in
          stats.Engine.cycles >= stats.Engine.predicted_cycles
          && stats.Engine.cycles <= stats.Engine.predicted_cycles + (4 * (nodes + 2)) + 16)

let prop_json_roundtrip =
  QCheck.Test.make ~count:100 ~name:"random programs: JSON roundtrip preserves semantics"
    Program_gen.arbitrary_program (fun p ->
      let q = Fixtures.ok (Program_json.of_string (Program_json.to_string p)) in
      semantically_equal p q)

let prop_sdfg_roundtrip =
  QCheck.Test.make ~count:60 ~name:"random programs: SDFG lower/extract preserves semantics"
    Program_gen.arbitrary_program (fun p ->
      match Sdfg.extract_program (Sdfg.of_program p) with
      | Error _ -> false
      | Ok q -> semantically_equal p q)

let prop_optimize_preserves =
  QCheck.Test.make ~count:60 ~name:"random programs: fold+CSE preserves semantics"
    Program_gen.arbitrary_program (fun p -> semantically_equal p (Opt.optimize p))

(* Bit-exact equality, modulo NaN payloads (any NaN matches any NaN) and
   OCaml's [=] on floats identifying -0.0 with 0.0 — the one identity
   (x + 0.0 -> x) whose sign-of-zero corner the optimizer knowingly
   tolerates. *)
let feq a b = (Float.is_nan a && Float.is_nan b) || a = b

let bit_identical_results (baseline : (string * Interp.result) list)
    (results : (string * Interp.result) list) =
  List.for_all
    (fun (name, (r : Interp.result)) ->
      match List.assoc_opt name results with
      | None -> false
      | Some r' ->
          r.Interp.valid = r'.Interp.valid
          &&
          let ok = ref true in
          Array.iteri
            (fun i v ->
              if r.Interp.valid.(i) && not (feq v (Tensor.get_flat r'.Interp.tensor i)) then
                ok := false)
            r.Interp.tensor.Tensor.data;
          !ok)
    baseline

(* Adversarial bodies: NaN and inf constants, signed zeros, division by
   zero, Eq/Ne both as values and as data-dependent branches. The
   optimizer must be *bit*-transparent on these, not just within a
   tolerance. *)
let prop_optimize_bit_identical_interp =
  QCheck.Test.make ~count:80
    ~name:"adversarial programs: fold+CSE is bit-identical through the interpreter"
    Program_gen.arbitrary_adversarial_program (fun p ->
      let inputs = Interp.random_inputs p in
      bit_identical_results (Interp.run p ~inputs) (Interp.run (Opt.optimize p) ~inputs))

(* The same bit-transparency through the compiled simulator path: the
   optimized program's DAG-compiled stencil units must reproduce the
   unoptimized interpreter baseline exactly. *)
let prop_optimize_bit_identical_sim =
  QCheck.Test.make ~count:40
    ~name:"adversarial programs: optimized simulator run matches unoptimized reference"
    Program_gen.arbitrary_adversarial_program (fun p ->
      let inputs = Interp.random_inputs p in
      let baseline = Interp.run p ~inputs in
      match Engine.run ~config:cheap ~inputs (Opt.optimize p) with
      | Error _ -> false
      | Ok stats -> bit_identical_results baseline stats.Engine.results)

(* Fuse + optimize: on interior cells (beyond the fusion equivalence
   radius, where boundary handling cannot differ) the composition is
   bit-identical too. *)
let prop_fuse_optimize_bit_identical_interior =
  QCheck.Test.make ~count:40
    ~name:"adversarial programs: fuse+optimize bit-identical on interior cells"
    Program_gen.arbitrary_adversarial_program (fun p ->
      let fused, report = Fusion.fuse_all p in
      if report.Fusion.fused_pairs = [] then true
      else begin
        let optimized = Opt.optimize fused in
        let radius = Fusion.equivalence_radius ~original:p ~fused in
        QCheck.assume (List.for_all (fun e -> e > 2 * radius) p.Program.shape);
        let inputs = Interp.random_inputs p in
        let rp = Interp.run p ~inputs and rq = Interp.run optimized ~inputs in
        let shape = p.Program.shape in
        List.for_all
          (fun (name, (r : Interp.result)) ->
            match List.assoc_opt name rq with
            | None -> false
            | Some r' ->
                let ok = ref true in
                let rec scan prefix = function
                  | [] ->
                      let idx = List.rev prefix in
                      if List.for_all2 (fun i e -> i >= radius && i < e - radius) idx shape
                      then begin
                        let a = Tensor.get r.Interp.tensor idx
                        and b = Tensor.get r'.Interp.tensor idx in
                        if not (feq a b) then ok := false
                      end
                  | e :: rest ->
                      for i = 0 to e - 1 do
                        scan (i :: prefix) rest
                      done
                in
                scan [] shape;
                !ok)
          rp
      end)

let prop_fusion_interior =
  QCheck.Test.make ~count:40 ~name:"random programs: fusion preserves interior cells"
    Program_gen.arbitrary_program (fun p ->
      let fused, report = Fusion.fuse_all p in
      if report.Fusion.fused_pairs = [] then true
      else begin
        let radius = Fusion.equivalence_radius ~original:p ~fused in
        let interior_exists =
          List.for_all (fun e -> e > 2 * radius) p.Program.shape
        in
        QCheck.assume interior_exists;
        let inputs = Interp.random_inputs p in
        let rp = Interp.run p ~inputs and rq = Interp.run fused ~inputs in
        let shape = p.Program.shape in
        List.for_all
          (fun (name, (r : Interp.result)) ->
            match List.assoc_opt name rq with
            | None -> false
            | Some r' ->
                let ok = ref true in
                let rec scan prefix = function
                  | [] ->
                      let idx = List.rev prefix in
                      if List.for_all2 (fun i e -> i >= radius && i < e - radius) idx shape
                      then begin
                        let a = Tensor.get r.Interp.tensor idx
                        and b = Tensor.get r'.Interp.tensor idx in
                        if
                          not
                            ((Float.is_nan a && Float.is_nan b)
                            || Float.abs (a -. b) <= 1e-9 *. Float.max 1. (Float.abs a))
                        then ok := false
                      end
                  | e :: rest ->
                      for i = 0 to e - 1 do
                        scan (i :: prefix) rest
                      done
                in
                scan [] shape;
                !ok)
          rp
      end)

let prop_tiling_exact =
  QCheck.Test.make ~count:40 ~name:"random programs: tiled equals untiled"
    Program_gen.arbitrary_program (fun p ->
      (* Shrink masks are per-tile, so restrict to non-shrinking programs
         (shrink + tiling composes at the writer level, not per tile). *)
      QCheck.assume (List.for_all (fun s -> not s.Stencil.shrink) p.Program.stencils);
      let tile_shape = List.map (fun e -> max 2 (e / 2)) p.Program.shape in
      let inputs = Interp.random_inputs p in
      let untiled = Interp.run p ~inputs in
      let plan = Tiling.plan p ~tile_shape in
      let tiled = Tiling.run_tiled plan ~inputs in
      List.for_all
        (fun (name, (r : Interp.result)) ->
          match List.assoc_opt name tiled with
          | None -> false
          | Some t ->
              let ok = ref true in
              Array.iteri
                (fun i v ->
                  let v' = Tensor.get_flat t i in
                  if not ((Float.is_nan v && Float.is_nan v') || Float.abs (v -. v') <= 1e-9)
                  then ok := false)
                r.Interp.tensor.Tensor.data;
              !ok)
        untiled)

let prop_codegen_never_crashes =
  QCheck.Test.make ~count:80 ~name:"random programs: both backends generate without crashing"
    Program_gen.arbitrary_program (fun p ->
      let opencl = Fixtures.ok (Sf_codegen.Opencl.generate p) in
      let vitis = Fixtures.ok (Sf_codegen.Vitis.generate p) in
      let host = Fixtures.ok (Sf_codegen.Opencl.host_source p) in
      let dot = Sf_codegen.Dot.of_program p in
      List.for_all (fun (a : Sf_codegen.Opencl.artifact) -> String.length a.Sf_codegen.Opencl.source > 0) opencl
      && String.length vitis > 0 && String.length host > 0 && String.length dot > 0)

let prop_report_never_crashes =
  QCheck.Test.make ~count:40 ~name:"random programs: markdown report generates"
    Program_gen.arbitrary_program (fun p ->
      String.length (Sf_codegen.Report.markdown p) > 0)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_generator_produces_valid;
      prop_sim_equals_reference;
      prop_cycles_near_model;
      prop_json_roundtrip;
      prop_sdfg_roundtrip;
      prop_optimize_preserves;
      prop_optimize_bit_identical_interp;
      prop_optimize_bit_identical_sim;
      prop_fuse_optimize_bit_identical_interior;
      prop_fusion_interior;
      prop_tiling_exact;
      prop_codegen_never_crashes;
      prop_report_never_crashes;
    ]
