open Sf_ir
module E = Builder.E
module Program_json = Sf_frontend.Program_json

let test_valid_programs () =
  List.iter
    (fun p -> match Program.validate p with
      | Ok () -> ()
      | Error errs -> Alcotest.fail (String.concat "; " errs))
    [
      Fixtures.laplace2d ();
      Fixtures.diamond ();
      Fixtures.chain ();
      Fixtures.kitchen_sink ();
      Fixtures.fork ();
    ]

let expect_invalid name build =
  Alcotest.test_case name `Quick (fun () ->
      match build () with
      | exception Invalid_argument _ -> ()
      | p -> (
          match Program.validate p with
          | Error _ -> ()
          | Ok () -> Alcotest.fail "expected validation failure"))

let invalid_cases =
  [
    expect_invalid "undeclared field access" (fun () ->
        let b = Builder.create ~name:"bad" ~shape:[ 4; 4 ] () in
        Builder.input b "a";
        Builder.stencil b "s" E.(acc "ghost" [ 0; 0 ]);
        Builder.output b "s";
        Builder.finish b);
    expect_invalid "offset rank mismatch" (fun () ->
        let b = Builder.create ~name:"bad" ~shape:[ 4; 4 ] () in
        Builder.input b "a";
        Builder.stencil b "s" E.(acc "a" [ 0 ]);
        Builder.output b "s";
        Builder.finish b);
    expect_invalid "duplicate names" (fun () ->
        let b = Builder.create ~name:"bad" ~shape:[ 4; 4 ] () in
        Builder.input b "a";
        Builder.stencil b "a" E.(c 1.);
        Builder.output b "a";
        Builder.finish b);
    expect_invalid "no outputs" (fun () ->
        let b = Builder.create ~name:"bad" ~shape:[ 4; 4 ] () in
        Builder.input b "a";
        Builder.stencil b "s" E.(acc "a" [ 0; 0 ]);
        Builder.finish b);
    expect_invalid "self access" (fun () ->
        let b = Builder.create ~name:"bad" ~shape:[ 4; 4 ] () in
        Builder.input b "a";
        Builder.stencil b "s" E.(acc "a" [ 0; 0 ] +% acc "s" [ 0; -1 ]);
        Builder.output b "s";
        Builder.finish b);
    expect_invalid "dependency cycle" (fun () ->
        let b = Builder.create ~name:"bad" ~shape:[ 4; 4 ] () in
        Builder.input b "a";
        Builder.stencil b "s" E.(acc "t" [ 0; 0 ]);
        Builder.stencil b "t" E.(acc "s" [ 0; 0 ]);
        Builder.output b "t";
        Builder.finish b);
    expect_invalid "dead stencil" (fun () ->
        let b = Builder.create ~name:"bad" ~shape:[ 4; 4 ] () in
        Builder.input b "a";
        Builder.stencil b "s" E.(acc "a" [ 0; 0 ]);
        Builder.stencil b "dead" E.(acc "a" [ 0; 0 ]);
        Builder.output b "s";
        Builder.finish b);
    expect_invalid "vector width does not divide innermost" (fun () ->
        let b = Builder.create ~vector_width:3 ~name:"bad" ~shape:[ 4; 8 ] () in
        Builder.input b "a";
        Builder.stencil b "s" E.(acc "a" [ 0; 0 ]);
        Builder.output b "s";
        Builder.finish b);
    expect_invalid "unbound variable" (fun () ->
        let b = Builder.create ~name:"bad" ~shape:[ 4; 4 ] () in
        Builder.input b "a";
        Builder.stencil b "s" E.(var "nowhere" +% acc "a" [ 0; 0 ]);
        Builder.output b "s";
        Builder.finish b);
    expect_invalid "boundary for unread field" (fun () ->
        let b = Builder.create ~name:"bad" ~shape:[ 4; 4 ] () in
        Builder.input b "a";
        Builder.input b "unused_in_s";
        Builder.stencil b
          ~boundary:[ ("unused_in_s", Boundary.Copy) ]
          "s"
          E.(acc "a" [ 0; 0 ]);
        Builder.stencil b "t" E.(acc "unused_in_s" [ 0; 0 ] +% acc "s" [ 0; 0 ]);
        Builder.output b "t";
        Builder.finish b);
    expect_invalid "axes out of range" (fun () ->
        let b = Builder.create ~name:"bad" ~shape:[ 4; 4 ] () in
        Builder.input b ~axes:[ 2 ] "a";
        Builder.stencil b "s" E.(acc "a" [ 0 ]);
        Builder.output b "s";
        Builder.finish b);
  ]

let test_graph_structure () =
  let p = Fixtures.diamond () in
  let g = Program.graph p in
  Alcotest.(check int) "vertices" 4 (Program.G.num_vertices g);
  Alcotest.(check (list string)) "sources" [ "x" ] (Program.G.sources g);
  Alcotest.(check (list string)) "sinks" [ "c" ] (Program.G.sinks g);
  Alcotest.(check (list string)) "consumers of a" [ "b"; "c" ] (Program.consumers p "a")

let test_topological_stencils () =
  let p = Fixtures.diamond () in
  let names = List.map (fun s -> s.Stencil.name) (Program.topological_stencils p) in
  Alcotest.(check (list string)) "order" [ "a"; "b"; "c" ] names

let test_strides () =
  let p = Fixtures.kitchen_sink ~shape:[ 4; 6; 8 ] () in
  Alcotest.(check (list int)) "strides" [ 48; 8; 1 ] (Program.strides p);
  Alcotest.(check int) "cells" 192 (Program.cells p)

let test_field_axes () =
  let p = Fixtures.kitchen_sink () in
  Alcotest.(check (list int)) "full" [ 0; 1; 2 ] (Program.field_axes p "u");
  Alcotest.(check (list int)) "row" [ 1 ] (Program.field_axes p "crlat");
  Alcotest.(check (list int)) "scalar" [] (Program.field_axes p "alpha");
  Alcotest.(check (list int)) "stencil output" [ 0; 1; 2 ] (Program.field_axes p "lap")

let roundtrip_program p () =
  let json = Program_json.to_json p in
  let reparsed = Fixtures.ok (Program_json.of_json json) in
  Alcotest.(check string) "name" p.Program.name reparsed.Program.name;
  Alcotest.(check (list int)) "shape" p.Program.shape reparsed.Program.shape;
  Alcotest.(check int) "stencil count" (List.length p.Program.stencils)
    (List.length reparsed.Program.stencils);
  List.iter2
    (fun (a : Stencil.t) (b : Stencil.t) ->
      Alcotest.(check string) "stencil name" a.Stencil.name b.Stencil.name;
      Alcotest.(check bool)
        (Printf.sprintf "stencil %s body" a.Stencil.name)
        true
        (Expr.equal (Expr.inline_lets a.Stencil.body) (Expr.inline_lets b.Stencil.body));
      Alcotest.(check bool) "boundaries" true (Stencil.equal_boundaries a b))
    p.Program.stencils reparsed.Program.stencils;
  Alcotest.(check (list string)) "outputs" p.Program.outputs reparsed.Program.outputs

let test_parse_document () =
  let src =
    {|
    {
      "name": "doc",
      "shape": [4, 8],
      "inputs": {"a": {}, "alpha": {"axes": []}},
      "stencils": {
        "s": {
          "code": "t = a[0, -1] + a[0, 1]; s = t * alpha;",
          "boundary": {"a": {"type": "copy"}}
        }
      },
      "outputs": ["s"]
    }
  |}
  in
  let p = Fixtures.ok (Program_json.of_string src) in
  Alcotest.(check int) "one stencil" 1 (List.length p.Program.stencils);
  let s = List.hd p.Program.stencils in
  Alcotest.(check bool) "copy boundary" true
    (Boundary.equal Boundary.Copy (Stencil.boundary_for s "a"));
  (* alpha resolved to a scalar access, so it appears among the inputs. *)
  Alcotest.(check bool) "alpha read" true
    (List.exists (String.equal "alpha") (Stencil.input_fields s))

let test_format_errors () =
  let fails src =
    match Program_json.of_string src with
    | Error (_ :: _) -> ()
    | Error [] -> Alcotest.fail ("format error without diagnostics for " ^ src)
    | Ok _ -> Alcotest.fail ("expected format error for " ^ src)
  in
  fails {| {"shape": [4]} |};
  fails {| {"shape": [4], "stencils": {}, "outputs": []} |};
  fails
    {| {"shape": [4], "stencils": {"s": {"code": "s = q[0];"}}, "outputs": ["s"]} |};
  fails
    {| {"shape": [4], "inputs": {"a": {}},
        "stencils": {"s": {"code": "s = a[0];", "boundary": {"a": {"type": "mirror"}}}},
        "outputs": ["s"]} |}

let suite =
  [
    Alcotest.test_case "fixture programs validate" `Quick test_valid_programs;
    Alcotest.test_case "graph structure" `Quick test_graph_structure;
    Alcotest.test_case "topological stencil order" `Quick test_topological_stencils;
    Alcotest.test_case "strides and cells" `Quick test_strides;
    Alcotest.test_case "field axes resolution" `Quick test_field_axes;
    Alcotest.test_case "json roundtrip laplace" `Quick (roundtrip_program (Fixtures.laplace2d ()));
    Alcotest.test_case "json roundtrip kitchen sink" `Quick
      (roundtrip_program (Fixtures.kitchen_sink ()));
    Alcotest.test_case "json roundtrip fork" `Quick (roundtrip_program (Fixtures.fork ()));
    Alcotest.test_case "parse full document" `Quick test_parse_document;
    Alcotest.test_case "format errors" `Quick test_format_errors;
  ]
  @ invalid_cases
