(* The instrumented pass manager: per-pass timing entries, invariant
   checking, the partition fallback warning, and artifact dumps. *)
module Diag = Sf_support.Diag
module Ctx = Sf_toolchain.Ctx
module Pass_manager = Sf_toolchain.Pass_manager
module Passes = Sf_toolchain.Passes
module Device = Sf_models.Device

let names trace = List.map (fun (t : Pass_manager.timing) -> t.Pass_manager.pass) trace

(* Property: one timing entry per executed pass, in order, whether or
   not the pipeline completes. Randomize the pipeline shape and the
   index of an injected failing pass. *)
let fail_pass =
  Pass_manager.make_pass ~name:"explode" ~description:"always fails" ~kind:Pass_manager.Other
    (fun _ -> Error [ Diag.error ~code:Diag.Code.internal "boom" ])

let timing_per_pass =
  QCheck.Test.make ~count:50 ~name:"one timing entry per executed pass"
    QCheck.(pair (int_bound 3) (option (int_bound 4)))
    (fun (extra_noops, fail_at) ->
      let noop i =
        Pass_manager.make_pass
          ~name:(Printf.sprintf "noop%d" i)
          ~description:"identity" ~kind:Pass_manager.Other
          (fun ctx -> Ok ctx)
      in
      let base =
        Passes.use_program (Fixtures.diamond ())
        :: List.init extra_noops noop
        @ [ Passes.delay_buffers; Passes.partition ]
      in
      let passes =
        match fail_at with
        | None -> base
        | Some i ->
            let i = min i (List.length base) in
            List.filteri (fun j _ -> j < i) base
            @ (fail_pass :: List.filteri (fun j _ -> j >= i) base)
      in
      let expected_names = List.map (fun (p : Pass_manager.pass) -> p.Pass_manager.name) passes in
      match Pass_manager.run passes (Ctx.create ()) with
      | Ok (_, trace) ->
          fail_at <> None = false
          && names trace = expected_names
          && List.for_all (fun (t : Pass_manager.timing) -> t.Pass_manager.ok) trace
      | Error (ds, trace) ->
          (* The trace covers exactly the executed prefix, the failing
             pass included and marked. *)
          let executed = (match fail_at with Some i -> min i (List.length base) | None -> -1) + 1 in
          Diag.has_errors ds
          && List.length trace = executed
          && names trace = List.filteri (fun j _ -> j < executed) expected_names
          && (match List.rev trace with
             | last :: prefix ->
                 (not last.Pass_manager.ok)
                 && List.for_all (fun (t : Pass_manager.timing) -> t.Pass_manager.ok) prefix
             | [] -> false))

let test_counters_recorded () =
  match
    Pass_manager.run
      [ Passes.use_program (Fixtures.diamond ()); Passes.delay_buffers ]
      (Ctx.create ())
  with
  | Error _ -> Alcotest.fail "pipeline failed"
  | Ok (_, trace) ->
      let t = List.nth trace 1 in
      Alcotest.(check (list (pair string int)))
        "delay analysis adds counters"
        [ ("stencils", 3); ("edges", 4); ("delay-words", 14) ]
        t.Pass_manager.counters_after

let test_exception_becomes_internal_diag () =
  let raiser =
    { fail_pass with Pass_manager.name = "raiser"; run = (fun _ -> failwith "kaboom") }
  in
  match Pass_manager.run [ raiser ] (Ctx.create ()) with
  | Ok _ -> Alcotest.fail "expected failure"
  | Error (d :: _, trace) ->
      Alcotest.(check string) "code" Diag.Code.internal d.Diag.code;
      Alcotest.(check int) "trace covers the raiser" 1 (List.length trace)
  | Error ([], _) -> Alcotest.fail "no diagnostics"

let test_invariant_checker_rejects () =
  (* A pass that installs a program referencing an undeclared field must
     be stopped by the post-pass validation invariant. *)
  let open Sf_ir in
  let broken =
    let valid = Fixtures.diamond () in
    {
      valid with
      Program.stencils =
        List.map
          (fun (s : Stencil.t) ->
            if s.Stencil.name = "c" then
              { s with Stencil.body = { Expr.lets = []; result = Expr.Access { field = "ghost"; offsets = [ 0; 0 ] } } }
            else s)
          valid.Program.stencils;
    }
  in
  let installer =
    {
      fail_pass with
      Pass_manager.name = "install-broken";
      run = (fun ctx -> Ok (Ctx.with_program ctx broken));
    }
  in
  match Pass_manager.run [ installer ] (Ctx.create ()) with
  | Ok _ -> Alcotest.fail "invariant should have failed"
  | Error (d :: _, _) -> Alcotest.(check string) "code" Diag.Code.validation d.Diag.code
  | Error ([], _) -> Alcotest.fail "no diagnostics"

let test_partition_fallback_warning () =
  (* On a device too small for even one stencil, greedy partitioning
     fails and the pass must fall back to a single device with exactly
     one SF0503 warning carrying the reason. *)
  let tiny = { Device.stratix10 with Device.alm = 1; ff = 1; m20k = 1; dsp = 1 } in
  match
    Pass_manager.run
      [ Passes.use_program (Fixtures.diamond ()); Passes.delay_buffers; Passes.partition ]
      (Ctx.create ~device:tiny ())
  with
  | Error (ds, _) -> Alcotest.fail (Diag.to_string (List.hd ds))
  | Ok (ctx, _) ->
      (match ctx.Ctx.partition with
      | Some pt -> Alcotest.(check int) "single device" 1 pt.Sf_mapping.Partition.num_devices
      | None -> Alcotest.fail "no partition");
      let fallbacks =
        List.filter (fun (d : Diag.t) -> d.Diag.code = Diag.Code.partition_fallback) ctx.Ctx.diags
      in
      (match fallbacks with
      | [ d ] ->
          Alcotest.(check bool) "is a warning" false (Diag.is_error d);
          Alcotest.(check bool) "carries the reason" true
            (List.exists
               (fun n -> n = "stencil a alone exceeds device resources")
               d.Diag.notes)
      | ds -> Alcotest.fail (Printf.sprintf "expected 1 fallback warning, got %d" (List.length ds)))

let test_partition_fits_quietly () =
  match
    Pass_manager.run
      [ Passes.use_program (Fixtures.diamond ()); Passes.delay_buffers; Passes.partition ]
      (Ctx.create ())
  with
  | Error (ds, _) -> Alcotest.fail (Diag.to_string (List.hd ds))
  | Ok (ctx, _) ->
      Alcotest.(check int) "no warnings on the default device" 0 (List.length ctx.Ctx.diags)

let test_dump_hook_layout () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "sf-toolchain-dump-test" in
  let hooks = Passes.dump_hook ~dir in
  (match
     Pass_manager.run ~hooks
       [ Passes.use_program (Fixtures.diamond ()); Passes.delay_buffers ]
       (Ctx.create ())
   with
  | Error (ds, _) -> Alcotest.fail (Diag.to_string (List.hd ds))
  | Ok _ -> ());
  let expect path = Alcotest.(check bool) path true (Sys.file_exists (Filename.concat dir path)) in
  expect "00-use-program/program.json";
  expect "01-delay-buffers/program.json";
  expect "01-delay-buffers/analysis.txt"

let test_with_program_invalidates () =
  match
    Pass_manager.run
      [ Passes.use_program (Fixtures.diamond ()); Passes.delay_buffers ]
      (Ctx.create ())
  with
  | Error _ -> Alcotest.fail "pipeline failed"
  | Ok (ctx, _) ->
      Alcotest.(check bool) "analysis present" true (ctx.Ctx.analysis <> None);
      let ctx' = Ctx.with_program ctx (Fixtures.laplace2d ()) in
      Alcotest.(check bool) "analysis invalidated" true (ctx'.Ctx.analysis = None)

let suite =
  [
    QCheck_alcotest.to_alcotest timing_per_pass;
    Alcotest.test_case "artifact counters recorded" `Quick test_counters_recorded;
    Alcotest.test_case "pass exceptions become SF0901" `Quick test_exception_becomes_internal_diag;
    Alcotest.test_case "post-pass validation invariant" `Quick test_invariant_checker_rejects;
    Alcotest.test_case "partition fallback warns once (SF0503)" `Quick test_partition_fallback_warning;
    Alcotest.test_case "fitting partition stays quiet" `Quick test_partition_fits_quietly;
    Alcotest.test_case "dump hook directory layout" `Quick test_dump_hook_layout;
    Alcotest.test_case "with_program invalidates derived artifacts" `Quick test_with_program_invalidates;
  ]
