(* Deterministic service-chaos campaign, wired into `dune build
   @chaos-smoke` (and through it into `dune runtest`). Twenty-five seeds
   of adversity against a live serve loop — injected worker exceptions,
   slow passes, malformed NDJSON, on-disk blob corruption — each checked
   against the four hardening invariants (every line answered exactly
   once, gap-free seq, loop alive with SF0905 per injected raise, and a
   clean re-run over the damaged store byte-identical to the baseline).
   A failing seed prints its report and replays exactly by number. *)
open Stencilflow

let examples_dir =
  List.find Sys.file_exists
    [ "examples/programs"; "../examples/programs"; "../../examples/programs" ]

let () =
  let programs =
    List.map
      (Filename.concat examples_dir)
      [ "diamond.json"; "laplace2d.json"; "smoothing3d.json" ]
  in
  let report = Chaos.campaign ~requests:6 ~programs () in
  Format.printf "%a@." Chaos.pp_report report;
  if not (Chaos.passed report) then failwith "chaos campaign failed"
